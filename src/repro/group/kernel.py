"""The per-machine group-communication protocol engine.

One :class:`GroupKernel` instance manages one group membership on one
machine, mirroring the group state Amoeba keeps in the kernel. It
implements:

* **sequencing** — the current sequencer assigns consecutive sequence
  numbers and multicasts each message (PB method);
* **r-resilience** — members send cumulative acknowledgements; the
  sequencer commits a message once ``r`` other members hold it, so any
  ``r`` crashes cannot lose a delivered message;
* **gap repair** — members detect missing sequence numbers and ask the
  sequencer to retransmit;
* **failure detection** — sequencer heartbeats (carrying the commit
  horizon) and member echoes; silence on either side marks the group
  *failed* and wakes every blocked primitive with
  :class:`~repro.errors.GroupFailure`;
* **view changes** — join, leave, and the two-phase coordinator-
  arbitrated reset that rebuilds a group from survivors after a crash
  (the ``ResetGroup`` of the paper).

The kernel is deliberately passive: all its logic runs inside packet
handlers and timer callbacks. The blocking primitives live in
:class:`repro.group.member.GroupMember`, which wraps this class.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque

from repro.errors import GroupFailure
from repro.rpc.transport import Transport
from repro.sim.future import Future
from repro.sim.primitives import Condition
from repro.group.timings import GroupTimings

CONTROL_SIZE = 64
HEADER_SIZE = 64

#: Committed history kept around beyond what liveness strictly needs,
#: as slack for stragglers, retransmissions, and reset vote tails.
HISTORY_MARGIN = 64

STATE_IDLE = "idle"
STATE_MEMBER = "member"
STATE_FAILED = "failed"


@dataclass
class BcRecord:
    """One sequenced message as stored in the history buffer."""

    seqno: int
    msg_id: tuple
    sender: Any
    payload: Any
    size: int


@dataclass(frozen=True)
class ResilienceChange:
    """Ordered control marker that changes the resilience degree.

    Sequenced like any message, so every member adopts the new degree
    at the marker's own sequence number: no member applies a later
    message under the old degree, and a joiner or reset survivor that
    replays the stream re-adopts it at exactly the same point.
    """

    resilience: int


@dataclass
class PendingSend:
    """Sender-side bookkeeping for one SendToGroup in flight."""

    msg_id: tuple
    payload: Any
    size: int
    future: Future
    retries_left: int


class GroupKernel:
    """Protocol state machine for one group on one machine."""

    def __init__(
        self,
        transport: Transport,
        group: str,
        timings: GroupTimings | None = None,
    ):
        self.transport = transport
        self.sim = transport.sim
        self.group = group
        self.timings = timings or GroupTimings()
        self.me = transport.address

        # Observability: registry counters (always on) + guarded tracer.
        self._obs = self.sim.obs
        registry = self._obs.registry
        node = str(self.me)
        self._c_submitted = registry.counter(node, "group.submitted")
        self._c_sequenced = registry.counter(node, "group.sequenced")
        self._c_bc_rx = registry.counter(node, "group.bc_rx")
        self._c_commits = registry.counter(node, "group.commit_advances")
        self._c_retrans_req = registry.counter(node, "group.retrans_requested")
        self._c_retrans_srv = registry.counter(node, "group.retrans_served")
        self._c_failures = registry.counter(node, "group.failures")
        self._c_views = registry.counter(node, "group.views_adopted")
        self._c_resets = registry.counter(node, "group.resets_led")
        self._c_delivered = registry.counter(node, "group.delivered")
        # Elastic-membership operations (runtime adds/evicts/retunes).
        self._c_joins_admitted = registry.counter(node, "membership.joins_admitted")
        self._c_evictions = registry.counter(node, "membership.evictions")
        self._c_resilience_changes = registry.counter(
            node, "membership.resilience_changes"
        )
        #: Sequenced-but-undelivered depth (received - taken): how far
        #: the application lags the stream this member holds. The
        #: health monitor watches this for sequencer/apply backlog.
        self._g_backlog = registry.gauge(node, "group.backlog")
        #: Sim-time of the last heartbeat evidence (sequencer: own
        #: tick; member: hb received). Staleness = now - value.
        self._g_last_hb = registry.gauge(node, "group.last_heartbeat_ms")
        # Sequencer-path pipeline accounting (docs/OBSERVABILITY.md §10):
        # the pipeline is "busy" while this member, acting as sequencer,
        # holds sequenced-but-untaken messages (received > taken), i.e.
        # while the backlog gauge above is positive on the sequencer.
        # seq_busy_ms integrates that; seq_sojourn_ms sums per-message
        # residence (sequenced -> taken), so sojourn/delivered is the
        # pipeline's W and busy/delivered its service time.
        self._c_seq_busy = registry.counter(node, "group.seq_busy_ms")
        self._c_seq_sojourn = registry.counter(node, "group.seq_sojourn_ms")
        #: Sequencing sim-time of the oldest in-flight message (0.0 when
        #: the pipeline is idle); backlog age = now - value when > 0.
        self._g_seq_oldest = registry.gauge(node, "group.seq_oldest_ms")
        self._seq_pipe: Deque[tuple[int, float]] = deque()
        self._seq_busy_since: float | None = None

        # Membership.
        self.state = STATE_IDLE
        self.instance: tuple | None = None
        self.incarnation = -1
        self.view: list = []
        self.sequencer = None
        self.resilience = 0
        self.failure_reason = ""
        #: Every view this kernel adopted or announced (epoch, members,
        #: resilience, trigger) — cluster.report() aggregates these so
        #: post-run analysis can reconstruct membership over time.
        self.view_log: list[dict] = []

        # Message stream.
        self.history: dict[int, BcRecord] = {}
        self.received = -1  # highest contiguous seqno held
        self.committed = -1  # highest seqno safe to deliver
        self.taken = -1  # highest seqno the application consumed
        self.next_assign = 0  # sequencer only
        self.sequenced_ids: dict[tuple, int] = {}  # msg_id -> seqno (dedup)
        self.pending_sends: dict[tuple, PendingSend] = {}
        self._next_msg_number = 0
        self._next_instance = 0
        #: Distinguishes this kernel from pre-crash kernels at the same
        #: address (restarts happen at a later simulated instant).
        self._epoch = self.sim.now

        # Failure detection.
        self.last_heartbeat = 0.0
        self.ack_progress: dict[Any, int] = {}  # sequencer: member -> acked
        self.last_echo: dict[Any, float] = {}  # sequencer: member -> time
        self._retrans_requested_at: float | None = None

        # Reset protocol.
        self._promise: tuple = (-1, "")
        self.reset_votes: dict[Any, tuple[int, list[BcRecord]]] | None = None
        self._reset_key: tuple | None = None

        # Wakeup for blocked receive/info waiters; join waiters.
        self.wakeup = Condition(f"grp({group}@{self.me}).wakeup")
        self._join_waiter: Future | None = None

        self._dead = False
        self._ticker = None
        self._register_handlers()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def _kind(self, suffix: str) -> str:
        return f"grp.{self.group}.{suffix}"

    def _register_handlers(self) -> None:
        for suffix, handler in [
            ("req", self._on_req),
            ("bc", self._on_bc),
            ("ack", self._on_ack),
            ("commit", self._on_commit),
            ("retrans", self._on_retrans),
            ("hb", self._on_hb),
            ("echo", self._on_echo),
            ("fail", self._on_fail),
            ("join_req", self._on_join_req),
            ("view", self._on_view),
            ("probe", self._on_probe),
            ("vote", self._on_vote),
            ("leave", self._on_leave),
        ]:
            self.transport.register(self._kind(suffix), handler)

    def crash(self) -> None:
        """Tear the kernel down with its machine."""
        self._dead = True
        self.state = STATE_IDLE
        self._seq_account()
        if self._ticker is not None:
            self._ticker.kill("kernel crash")
            self._ticker = None

    def _send(self, dst, suffix: str, payload: dict, size: int = CONTROL_SIZE) -> None:
        if self._dead or not self.transport.nic.up:
            return
        self.transport.send(dst, self._kind(suffix), payload, size)

    def _broadcast(self, suffix: str, payload: dict, size: int = CONTROL_SIZE) -> None:
        if self._dead or not self.transport.nic.up:
            return
        self.transport.broadcast(self._kind(suffix), payload, size)

    def _stamp(self) -> dict:
        return {"instance": self.instance, "inc": self.incarnation}

    def _update_backlog(self) -> None:
        """Refresh the ``group.backlog`` gauge after received/taken moved."""
        self._g_backlog.set(self.received - self.taken)
        self._seq_account()

    def _seq_account(self) -> None:
        """Settle sequencer-pipeline busy time and per-message sojourns.

        Called whenever received/taken move and on every role change.
        Busy time is flushed incrementally (not only when the pipeline
        drains) so windowed readers — the health monitor's
        ``group.seq_utilization`` signal and the capacity attributor —
        see a counter that is current to the last pipeline event even
        during a long saturated stretch.
        """
        pipe = self._seq_pipe
        if not pipe and self._seq_busy_since is None:
            return  # non-sequencer members and the idle steady state
        now = self.sim.now
        taken = self.taken
        while pipe and pipe[0][0] <= taken:
            self._c_seq_sojourn.inc(now - pipe.popleft()[1])
        role_ok = self.state == STATE_MEMBER and self.me == self.sequencer
        if pipe and role_ok:
            since = self._seq_busy_since
            if since is None:
                self._seq_busy_since = now
            elif now > since:
                self._c_seq_busy.inc(now - since)
                self._seq_busy_since = now
            head = pipe[0][1]
            if self._g_seq_oldest.value != head:
                self._g_seq_oldest.set(head)
        else:
            if self._seq_busy_since is not None:
                self._c_seq_busy.inc(now - self._seq_busy_since)
                self._seq_busy_since = None
            if not role_ok:
                # Role lost mid-flight: drop unfinished sojourns rather
                # than attribute the handover gap to sequencing.
                pipe.clear()
            if self._g_seq_oldest.value != 0.0:
                self._g_seq_oldest.set(0.0)

    def _note_heartbeat(self) -> None:
        """Stamp heartbeat evidence (field + gauge) at the current time."""
        self.last_heartbeat = self.sim.now
        self._g_last_hb.set(self.sim.now)

    def _current(self, payload: dict) -> bool:
        """Is this packet from our group instance and incarnation?"""
        if payload.get("instance") != self.instance:
            return False
        inc = payload.get("inc")
        if inc == self.incarnation:
            return True
        if inc is not None and inc > self.incarnation and self.state == STATE_MEMBER:
            # Traffic from a future view we never saw (its grp.view got
            # lost, or we were excluded): we are out of sync.
            self.fail_group(f"saw incarnation {inc} > {self.incarnation}")
        return False

    # ------------------------------------------------------------------
    # lifecycle: create / join / leave
    # ------------------------------------------------------------------

    def create(self, resilience: int) -> None:
        """Form a brand-new group containing only this member."""
        self._next_instance += 1
        self.instance = (self.me, self._next_instance, self.sim.now)
        self.incarnation = 0
        self.view = [self.me]
        self.sequencer = self.me
        self.resilience = resilience
        self.state = STATE_MEMBER
        self.failure_reason = ""
        self.history.clear()
        self.sequenced_ids.clear()
        self.received = self.committed = self.taken = -1
        self._seq_pipe.clear()
        self._update_backlog()
        self.next_assign = 0
        self.ack_progress = {}
        self.last_echo = {}
        self._promise = (self.incarnation, "")
        self._log_view("create")
        self._start_ticker()
        self.wakeup.notify_all()

    def start_join(self) -> Future:
        """Broadcast one join round; the future resolves when a view
        including us arrives (the member retries rounds and times out)."""
        fut = Future(f"join({self.group}@{self.me})")
        self._join_waiter = fut
        self._broadcast("join_req", {"joiner": self.me})
        return fut

    def announce_leave(self) -> None:
        """Tell the sequencer we are leaving (graceful)."""
        if self.state != STATE_MEMBER:
            return
        if self.me == self.sequencer:
            self._sequencer_remove_member(self.me, graceful=True)
        else:
            self._send(self.sequencer, "leave", {**self._stamp(), "member": self.me})

    def evict_member(self, member) -> bool:
        """Coordinator-driven eviction (sequencer only).

        Excludes a dead or flapping *member* from the view without
        failing the whole group: the remaining members adopt the
        shrunk view, and a live evictee that still sees the
        announcement self-fails ("excluded from view"). Returns True
        when the view change was announced.
        """
        if self.state != STATE_MEMBER or self.me != self.sequencer:
            return False
        if member == self.me or member not in self.view:
            return False
        self._c_evictions.inc()
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "group", "grp.evict",
                lineage=("life", str(self.me)), member=str(member),
            )
        self._sequencer_remove_member(member, graceful=False)
        return True

    def _log_view(self, trigger: str, view=None, sequencer=None) -> None:
        """Append one membership-history entry for the current view."""
        members = self.view if view is None else view
        self.view_log.append(
            {
                "at_ms": self.sim.now,
                "epoch": self.incarnation,
                "members": tuple(str(m) for m in sorted(members, key=str)),
                "sequencer": str(sequencer if sequencer is not None else self.sequencer),
                "resilience": self.resilience,
                "trigger": trigger,
            }
        )

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def new_msg_id(self) -> tuple:
        """Message ids must be unique across this machine's *lifetimes*:
        after a crash + restart the counter starts over, but peers may
        still hold dedup entries from the previous incarnation of this
        machine — a reused (address, n) pair would make the sequencer
        silently swallow a brand-new message as a "duplicate" and let
        the sender's watchdog resolve against the old assignment. The
        kernel's creation time disambiguates restarts."""
        self._next_msg_number += 1
        return (self.me, self._epoch, self._next_msg_number)

    def submit(self, payload: Any, size: int, msg_id: tuple | None = None) -> Future:
        """Start one SendToGroup; future resolves with the assigned
        seqno once the message is r-safe (committed).

        Callers that already minted a msg id (to stamp trace events
        emitted *before* the submit, e.g. the directory's request-
        received marker) pass it in; everyone else gets a fresh one.
        """
        fut = Future(f"send({self.group}@{self.me})")
        if self.state != STATE_MEMBER:
            fut.fail(GroupFailure(f"not a group member ({self.state})"))
            return fut
        if msg_id is None:
            msg_id = self.new_msg_id()
        self._c_submitted.inc()
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "group", "grp.submit",
                lineage=msg_id, size=size,
            )
        pending = PendingSend(
            msg_id, payload, size, fut, self.timings.send_retries
        )
        self.pending_sends[msg_id] = pending
        self._transmit_request(pending)
        self._arm_send_watchdog(pending)
        return fut

    def _transmit_request(self, pending: PendingSend) -> None:
        if self.me == self.sequencer:
            self._sequence(pending.msg_id, self.me, pending.payload, pending.size)
        else:
            self._send(
                self.sequencer,
                "req",
                {
                    **self._stamp(),
                    "msg_id": pending.msg_id,
                    "sender": self.me,
                    "payload": pending.payload,
                    "size": pending.size,
                },
                pending.size + HEADER_SIZE,
            )

    def _arm_send_watchdog(self, pending: PendingSend) -> None:
        def check():
            if pending.future.resolved or self._dead:
                return
            if self.state == STATE_FAILED:
                self._fail_pending(pending)
                return
            if pending.retries_left <= 0:
                self._fail_pending(pending)
                return
            pending.retries_left -= 1
            if self.state == STATE_MEMBER:
                self._transmit_request(pending)
            self._arm_send_watchdog(pending)

        self.sim.schedule(self.timings.send_retry_ms, check)

    def _fail_pending(self, pending: PendingSend) -> None:
        self.pending_sends.pop(pending.msg_id, None)
        pending.future.fail_if_pending(
            GroupFailure(f"send {pending.msg_id} not delivered: {self.failure_reason or 'timeout'}")
        )

    # ------------------------------------------------------------------
    # sequencer logic
    # ------------------------------------------------------------------

    def _sequence(self, msg_id: tuple, sender, payload: Any, size: int) -> None:
        """Assign the next seqno and multicast (sequencer only)."""
        existing = self.sequenced_ids.get(msg_id)
        if existing is not None:
            # Duplicate request (sender retried): re-announce the record.
            record = self.history[existing]
            self._broadcast_record(record)
            return
        seqno = self.next_assign
        self.next_assign += 1
        record = BcRecord(seqno, msg_id, sender, payload, size)
        self.history[seqno] = record
        self.sequenced_ids[msg_id] = seqno
        self._c_sequenced.inc()
        self._seq_pipe.append((seqno, self.sim.now))
        self._seq_account()
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "group", "grp.sequence",
                lineage=msg_id, seqno=seqno, sender=str(sender),
            )
        if self.received == seqno - 1:
            self.received = seqno
            self._update_backlog()
            self._note_received(record)
        if self._required_acks() == 0 and self.received > self.committed:
            # With r = 0 (or a single-member view) the commit horizon
            # rides on the multicast itself: no separate commit packet.
            self.committed = self.received
            self._broadcast_record(record)
            self._after_commit_advance()
        else:
            self._broadcast_record(record)
            self._advance_commit()

    def _broadcast_record(self, record: BcRecord) -> None:
        self._broadcast(
            "bc",
            {
                **self._stamp(),
                "seqno": record.seqno,
                "msg_id": record.msg_id,
                "sender": record.sender,
                "payload": record.payload,
                "size": record.size,
                "committed": self.committed,
            },
            record.size + HEADER_SIZE,
        )

    def _required_acks(self) -> int:
        """How many *other* members must hold a message before commit."""
        others = len(self.view) - 1
        return min(self.resilience, others)

    def _safe_point(self) -> int:
        """Highest seqno held by enough members to be r-safe."""
        need = self._required_acks()
        if need == 0:
            return self.received
        acks = sorted(
            (self.ack_progress.get(m, -1) for m in self.view if m != self.me),
            reverse=True,
        )
        return min(acks[need - 1], self.received)

    def _advance_commit(self) -> None:
        if self.me != self.sequencer or self.state != STATE_MEMBER:
            return
        safe = self._safe_point()
        if safe > self.committed:
            self.committed = safe
            self._c_commits.inc()
            if self._obs.tracer.enabled:
                frontier = self.history.get(self.committed)
                self._obs.tracer.emit(
                    str(self.me), "group", "grp.commit",
                    lineage=frontier.msg_id if frontier else ("commit", str(self.me)),
                    committed=self.committed,
                )
            self._broadcast("commit", {**self._stamp(), "committed": self.committed})
            self._after_commit_advance()

    def _after_commit_advance(self) -> None:
        """Resolve local sends covered by the new commit horizon."""
        for msg_id, pending in list(self.pending_sends.items()):
            seqno = self.sequenced_ids.get(msg_id)
            if seqno is not None and seqno <= self.committed:
                self.pending_sends.pop(msg_id, None)
                if self._obs.tracer.enabled:
                    self._obs.tracer.emit(
                        str(self.me), "group", "grp.send.committed",
                        lineage=msg_id, seqno=seqno,
                    )
                pending.future.resolve_if_pending(seqno)
        self.wakeup.notify_all()

    # ------------------------------------------------------------------
    # packet handlers
    # ------------------------------------------------------------------

    def _on_req(self, packet) -> None:
        payload = packet.payload
        if not self._current(payload) or self.state != STATE_MEMBER:
            return
        if self.me != self.sequencer:
            return  # stale sender view; its watchdog will retarget
        self._sequence(
            payload["msg_id"], payload["sender"], payload["payload"], payload["size"]
        )

    def _on_bc(self, packet) -> None:
        payload = packet.payload
        if not self._current(payload) or self.state != STATE_MEMBER:
            return
        seqno = payload["seqno"]
        if seqno not in self.history:
            self.history[seqno] = BcRecord(
                seqno,
                payload["msg_id"],
                payload["sender"],
                payload["payload"],
                payload["size"],
            )
            self.sequenced_ids[payload["msg_id"]] = seqno
            self._c_bc_rx.inc()
            if self._obs.tracer.enabled:
                self._obs.tracer.emit(
                    str(self.me), "group", "grp.bc.rx",
                    lineage=payload["msg_id"], seqno=seqno,
                )
        self._advance_received()
        if seqno > self.received:
            self._maybe_request_retrans()
        if self.resilience > 0 and self.me != self.sequencer:
            self._send(
                self.sequencer,
                "ack",
                {**self._stamp(), "member": self.me, "acked": self.received},
            )
        self._note_commit(payload.get("committed", -1))

    def _advance_received(self) -> None:
        while (self.received + 1) in self.history:
            self.received += 1
            self._note_received(self.history[self.received])
        self._update_backlog()
        if self.received >= self.committed:
            self._retrans_requested_at = None

    def _note_received(self, record: BcRecord) -> None:
        """Inspect a record the moment it becomes contiguously held.

        Resilience markers take effect *here*, not at delivery: the
        commit rule for everything at and above the marker must use
        the new degree, and every path that advances the contiguous
        horizon (live multicast, retransmission, view tails, reset
        vote merges) funnels through this hook, so adoption lands at
        the same seqno on every member however the record arrived.
        """
        if isinstance(record.payload, ResilienceChange):
            self._adopt_resilience(record.payload.resilience, record.seqno)

    def _adopt_resilience(self, resilience: int, seqno: int) -> None:
        if resilience == self.resilience:
            return
        self.resilience = resilience
        self._c_resilience_changes.inc()
        self._log_view("resilience")
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "group", "grp.resilience",
                lineage=("life", str(self.me)),
                resilience=resilience, seqno=seqno,
            )
        if self.me == self.sequencer and self.state == STATE_MEMBER:
            # A lower degree may unblock the commit horizon immediately.
            self._advance_commit()

    def _note_commit(self, committed: int) -> None:
        if committed > self.committed:
            self.committed = min(committed, self.received)
            if committed > self.received:
                # We are told messages we do not hold are committed.
                self._maybe_request_retrans()
            self._after_commit_advance()

    def _on_ack(self, packet) -> None:
        payload = packet.payload
        if not self._current(payload) or self.me != self.sequencer:
            return
        member, acked = payload["member"], payload["acked"]
        if acked > self.ack_progress.get(member, -1):
            self.ack_progress[member] = acked
        self.last_echo[member] = self.sim.now
        self._advance_commit()

    def _on_commit(self, packet) -> None:
        payload = packet.payload
        if not self._current(payload) or self.state != STATE_MEMBER:
            return
        self._note_commit(payload["committed"])

    def _maybe_request_retrans(self) -> None:
        now = self.sim.now
        if (
            self._retrans_requested_at is not None
            and now - self._retrans_requested_at < self.timings.send_retry_ms
        ):
            return
        self._retrans_requested_at = now
        if self.sequencer != self.me:
            self._c_retrans_req.inc()
            if self._obs.tracer.enabled:
                self._obs.tracer.emit(
                    str(self.me), "group", "grp.retrans.req",
                    lineage=("life", str(self.me)),
                    missing_from=self.received + 1,
                )
            self._send(
                self.sequencer,
                "retrans",
                {**self._stamp(), "member": self.me, "from": self.received + 1},
            )

    def _on_retrans(self, packet) -> None:
        payload = packet.payload
        if not self._current(payload) or self.me != self.sequencer:
            return
        start = payload["from"]
        self._c_retrans_srv.inc()
        for seqno in range(start, self.received + 1):
            record = self.history.get(seqno)
            if record is not None:
                self._send(
                    payload["member"],
                    "bc",
                    {
                        **self._stamp(),
                        "seqno": record.seqno,
                        "msg_id": record.msg_id,
                        "sender": record.sender,
                        "payload": record.payload,
                        "size": record.size,
                        "committed": self.committed,
                    },
                    record.size + HEADER_SIZE,
                )

    # -- heartbeats -----------------------------------------------------

    def _start_ticker(self) -> None:
        if self._ticker is not None:
            self._ticker.kill("ticker restart")
        self._note_heartbeat()
        self._ticker = self.sim.spawn(
            self._tick_loop(), f"grp({self.group}@{self.me}).ticker"
        )

    def _tick_loop(self):
        while not self._dead:
            yield self.sim.sleep(self.timings.heartbeat_interval_ms)
            if self._dead or self.state != STATE_MEMBER:
                continue
            if self.me == self.sequencer:
                self._sequencer_tick()
            else:
                self._member_tick()

    def _sequencer_tick(self) -> None:
        self._broadcast(
            "hb",
            {
                **self._stamp(),
                "committed": self.committed,
                "next_assign": self.next_assign,
            },
        )
        # The sequencer's own heartbeat traffic is this tick; keeping
        # the stamp fresh matters if this kernel later demotes to an
        # ordinary member without an intervening view adoption.
        self._note_heartbeat()
        self._prune_history()
        timeout = self.timings.echo_timeout_ms
        for member in list(self.view):
            if member == self.me:
                continue
            last = self.last_echo.get(member)
            if last is None:
                # Never-echoed member (e.g. freshly joined and not yet
                # stamped by every code path): its eviction clock
                # starts at the first tick that observes it, NOT at the
                # stale ``last_heartbeat`` of ticker start-up — judging
                # a quiet-but-alive joiner against that old baseline
                # evicted it spuriously right after a view change.
                self.last_echo[member] = self.sim.now
                continue
            if self.sim.now - last > timeout:
                self.fail_group(f"member {member!r} stopped echoing", announce=True)
                return

    def _member_tick(self) -> None:
        if self.sim.now - self.last_heartbeat > self.timings.heartbeat_timeout_ms:
            self.fail_group("sequencer heartbeat lost", announce=True)
        else:
            self._prune_history()

    def _prune_history(self) -> None:
        """Garbage-collect history the group can no longer need.

        Everything strictly below the *floor* may go:

        * the application must still be able to take up to `taken+1`;
        * the sequencer must be able to retransmit anything some
          member has not yet acknowledged (`min(ack_progress)`);
        * a reset coordinator's vote tail starts above its own
          `received`, which commit guarantees is at least `committed`
          for every member — so `committed` bounds what peers may ask
          of us, with HISTORY_MARGIN of slack for stragglers.
        """
        floor = min(self.taken, self.committed - HISTORY_MARGIN)
        if self.me == self.sequencer and self.ack_progress:
            floor = min(floor, min(self.ack_progress.values()))
        if floor <= 0:
            return
        stale = [s for s in self.history if s < floor]
        for seqno in stale:
            record = self.history.pop(seqno)
            self.sequenced_ids.pop(record.msg_id, None)

    def _on_hb(self, packet) -> None:
        payload = packet.payload
        if not self._current(payload) or self.state != STATE_MEMBER:
            return
        self._note_heartbeat()
        if payload["next_assign"] - 1 > self.received:
            self._maybe_request_retrans()
        self._note_commit(payload["committed"])
        self._send(
            self.sequencer,
            "echo",
            {**self._stamp(), "member": self.me, "acked": self.received},
        )

    def _on_echo(self, packet) -> None:
        self._on_ack(packet)

    # -- failure ----------------------------------------------------------

    def fail_group(self, reason: str, announce: bool = False) -> None:
        """Mark the group failed; every blocked primitive wakes with
        GroupFailure and the application is expected to reset/recover."""
        if self.state != STATE_MEMBER:
            return
        self.state = STATE_FAILED
        self.failure_reason = reason
        self._seq_account()
        self._c_failures.inc()
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "group", "grp.fail",
                lineage=("life", str(self.me)),
                reason=reason, announce=announce,
            )
        if announce:
            self._broadcast("fail", {**self._stamp(), "reason": reason})
        for pending in list(self.pending_sends.values()):
            self._fail_pending(pending)
        self.wakeup.notify_all()

    def _on_fail(self, packet) -> None:
        payload = packet.payload
        if not self._current(payload):
            return
        self.fail_group(f"peer reported: {payload['reason']}")

    # ------------------------------------------------------------------
    # view changes: join / leave
    # ------------------------------------------------------------------

    def _on_join_req(self, packet) -> None:
        payload = packet.payload
        if self.state != STATE_MEMBER or self.me != self.sequencer:
            return
        joiner = payload["joiner"]
        if joiner in self.view:
            # Re-announce the current view (the joiner's ack was lost).
            self._announce_view(joiner=joiner, joiner_base=self.committed)
            return
        self.incarnation += 1
        self.view = sorted([*self.view, joiner], key=str)
        self.last_echo[joiner] = self.sim.now
        self.ack_progress.setdefault(joiner, self.committed)
        self._c_joins_admitted.inc()
        self._announce_view(joiner=joiner, joiner_base=self.committed)
        self._log_view("join")
        self.wakeup.notify_all()

    def _sequencer_remove_member(self, member, graceful: bool) -> None:
        self.incarnation += 1
        new_view = [m for m in self.view if m != member]
        if member == self.me:
            # Sequencer hands over to the next member (graceful leave).
            new_sequencer = new_view[0] if new_view else None
            tail_base = min(
                [self.ack_progress.get(m, -1) for m in new_view] + [self.committed]
            )
            self._announce_view(
                view=new_view,
                sequencer=new_sequencer,
                left=member,
                tail=[
                    self.history[s]
                    for s in range(tail_base + 1, self.received + 1)
                    if s in self.history
                ],
                next_assign=self.next_assign,
            )
            self.state = STATE_IDLE
            self._seq_account()
            self._log_view("handover", view=new_view, sequencer=new_sequencer)
            self.wakeup.notify_all()
        else:
            self.view = new_view
            self.ack_progress.pop(member, None)
            self.last_echo.pop(member, None)
            self._announce_view(left=member)
            self._log_view("leave" if graceful else "evict")
            self._advance_commit()
            self.wakeup.notify_all()

    def _on_leave(self, packet) -> None:
        payload = packet.payload
        if not self._current(payload) or self.me != self.sequencer:
            return
        if payload["member"] in self.view:
            self._sequencer_remove_member(payload["member"], graceful=True)

    def _announce_view(
        self,
        view=None,
        sequencer=None,
        joiner=None,
        joiner_base: int = -1,
        left=None,
        tail: list[BcRecord] | None = None,
        next_assign: int | None = None,
        prev_instance=None,
    ) -> None:
        self._broadcast(
            "view",
            {
                "instance": self.instance,
                "prev_instance": prev_instance,
                "inc": self.incarnation,
                "view": list(view if view is not None else self.view),
                "sequencer": sequencer if sequencer is not None else self.sequencer,
                "resilience": self.resilience,
                "committed": self.committed,
                "joiner": joiner,
                "joiner_base": joiner_base,
                "left": left,
                "tail": list(tail or []),
                "next_assign": next_assign,
            },
            size=256,
        )

    def _on_view(self, packet) -> None:
        payload = packet.payload
        same_instance = (
            payload.get("instance") == self.instance
            or payload.get("prev_instance") == self.instance
        )
        am_joiner = (
            payload.get("joiner") == self.me
            and self._join_waiter is not None
            and self.state != STATE_MEMBER
        )
        if not same_instance and not am_joiner:
            return
        if same_instance and payload["inc"] <= self.incarnation:
            return
        view = payload["view"]
        if self.me == payload.get("left"):
            self.state = STATE_IDLE  # our graceful leave completed
            self.wakeup.notify_all()
            return
        if self.me not in view:
            if self.state == STATE_MEMBER and same_instance:
                self.fail_group(f"excluded from view {view}")
            return
        if am_joiner or (same_instance and self.state in (STATE_MEMBER, STATE_FAILED)):
            self._adopt_view(payload)

    def _adopt_view(self, payload: dict) -> None:
        joining = payload.get("joiner") == self.me and self.state != STATE_MEMBER
        instance_changed = payload["instance"] != self.instance
        self.instance = payload["instance"]
        self.incarnation = payload["inc"]
        self.view = list(payload["view"])
        self.sequencer = payload["sequencer"]
        self.resilience = payload.get("resilience", self.resilience)
        if joining:
            base = payload["joiner_base"]
            self.history.clear()
            self.sequenced_ids.clear()
            self.received = self.committed = self.taken = base
        elif instance_changed:
            # A reset formed a new instance: our above-gap speculation
            # from the old one must go before the tail installs, or it
            # would shadow the new instance's records at reused seqnos.
            self._drop_speculation()
        for record in payload.get("tail") or []:
            if record.seqno not in self.history:
                self.history[record.seqno] = record
                self.sequenced_ids[record.msg_id] = record.seqno
        self._advance_received()
        if payload["committed"] > self.committed:
            self.committed = min(payload["committed"], self.received)
        if self.me == self.sequencer:
            if payload.get("next_assign") is not None:
                self.next_assign = payload["next_assign"]
            self.next_assign = max(self.next_assign, self.received + 1)
            self.ack_progress = {
                m: self.ack_progress.get(m, self.committed)
                for m in self.view
                if m != self.me
            }
            self.last_echo = {m: self.sim.now for m in self.view if m != self.me}
        was_member = self.state == STATE_MEMBER
        self.state = STATE_MEMBER
        self.failure_reason = ""
        self._note_heartbeat()
        self._promise = (self.incarnation, "")
        self._c_views.inc()
        # Settle pipeline accounting under the adopted role: a handover
        # away from us flushes + clears, toward us starts busy tracking.
        self._seq_account()
        self._log_view("join" if joining else "adopt")
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "group", "grp.view",
                lineage=("life", str(self.me)),
                inc=self.incarnation, members=len(self.view),
                sequencer=str(self.sequencer), joining=joining,
            )
        if self._ticker is None or not was_member:
            self._start_ticker()
        if joining and self._join_waiter is not None:
            waiter, self._join_waiter = self._join_waiter, None
            waiter.resolve_if_pending(list(self.view))
        # Re-submit our unfinished sends to the (possibly new) sequencer.
        for pending in self.pending_sends.values():
            if not pending.future.resolved:
                self._transmit_request(pending)
        self._after_commit_advance()
        self.wakeup.notify_all()

    def _drop_speculation(self) -> None:
        """Discard uncommitted above-gap records at an instance boundary.

        A reset restarts seqno assignment at ``received + 1``, so
        records buffered beyond a gap in the *old* instance would
        collide with the new instance's assignments — ``_on_bc`` would
        keep the stale record, and its ``sequenced_ids`` entry would
        let ``_after_commit_advance`` resolve a send against a dead
        message. Dropping them is safe: nothing above the contiguous
        horizon was committed, and senders re-submit unfinished sends
        after every view change.
        """
        stale = [s for s in self.history if s > self.received]
        for seqno in stale:
            record = self.history.pop(seqno)
            self.sequenced_ids.pop(record.msg_id, None)
        # Dropped records never deliver; without this their pipeline
        # entries would double-count sojourn when seqnos are reassigned.
        while self._seq_pipe and self._seq_pipe[-1][0] > self.received:
            self._seq_pipe.pop()

    # ------------------------------------------------------------------
    # reset (coordinator arbitration + vote collection)
    # ------------------------------------------------------------------

    def begin_reset_round(self, cand_inc: int) -> tuple | None:
        """Try to become reset coordinator at *cand_inc*.

        Returns the coordinator key on success, or None if a stronger
        candidate holds our promise already.
        """
        key = (cand_inc, str(self.me))
        if cand_inc <= self.incarnation or key < self._promise:
            return None
        self._promise = key
        self._reset_key = key
        self.reset_votes = {self.me: (self.received, [])}
        self._broadcast(
            "probe",
            {
                "instance": self.instance,
                "cand_inc": cand_inc,
                "coordinator": self.me,
                "coord_received": self.received,
            },
        )
        return key

    def reset_round_still_mine(self, key: tuple) -> bool:
        """Whether we kept the promise lock for our reset round."""
        return self._reset_key == key and self._promise == key

    def _on_probe(self, packet) -> None:
        payload = packet.payload
        if payload.get("instance") != self.instance or self.instance is None:
            return
        cand_inc = payload["cand_inc"]
        coordinator = payload["coordinator"]
        if coordinator == self.me:
            return
        key = (cand_inc, str(coordinator))
        if cand_inc <= self.incarnation or key < self._promise:
            return
        self._promise = key
        if self._reset_key is not None and self._reset_key < key:
            self._reset_key = None  # abandon our own weaker attempt
        tail = [
            self.history[s]
            for s in range(payload["coord_received"] + 1, self.received + 1)
            if s in self.history
        ]
        self._send(
            coordinator,
            "vote",
            {
                "instance": self.instance,
                "cand_inc": cand_inc,
                "coordinator": coordinator,
                "member": self.me,
                "received": self.received,
                "tail": tail,
            },
            size=CONTROL_SIZE + sum(r.size for r in tail),
        )

    def _on_vote(self, packet) -> None:
        payload = packet.payload
        if payload.get("instance") != self.instance:
            return
        key = (payload["cand_inc"], str(payload["coordinator"]))
        if payload["coordinator"] != self.me or self._reset_key != key:
            return
        if self.reset_votes is not None:
            self.reset_votes[payload["member"]] = (
                payload["received"],
                payload["tail"],
            )

    def conclude_reset(self, key: tuple) -> list | None:
        """Form and announce the new view from collected votes.

        Returns the new view, or None if we lost the arbitration.
        """
        if not self.reset_round_still_mine(key) or self.reset_votes is None:
            self.reset_votes = None
            self._reset_key = None
            return None
        votes = self.reset_votes
        self.reset_votes = None
        self._reset_key = None
        # Merge histories: every record any survivor holds is kept.
        for _, tail in votes.values():
            for record in tail:
                if record.seqno not in self.history:
                    self.history[record.seqno] = record
                    self.sequenced_ids[record.msg_id] = record.seqno
        self._advance_received()
        self._drop_speculation()
        cand_inc = key[0]
        # A reset forms a NEW group instance: two disjoint survivor
        # sets (e.g. the two sides of a partition) must never produce
        # views whose traffic can be confused after the network heals.
        prev_instance = self.instance
        self.instance = ("reset", prev_instance, cand_inc, str(self.me))
        self.incarnation = cand_inc
        self.view = sorted(votes.keys(), key=str)
        self.sequencer = self.me
        self.next_assign = self.received + 1
        # Everything the survivors hold becomes committed: with the old
        # resilience degree, any message that completed a SendToGroup
        # was at every member, so recommitting the union is safe.
        self.committed = self.received
        self.ack_progress = {m: self.committed for m in self.view if m != self.me}
        self.last_echo = {m: self.sim.now for m in self.view if m != self.me}
        self.state = STATE_MEMBER
        self.failure_reason = ""
        self._promise = (self.incarnation, "")
        self._note_heartbeat()
        self._c_resets.inc()
        self._log_view("reset")
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "group", "grp.reset",
                lineage=("life", str(self.me)),
                inc=self.incarnation, survivors=len(self.view),
            )
        tail = [self.history[s] for s in sorted(self.history) if s > min(
            (received for received, _ in votes.values()), default=-1
        )]
        self._announce_view(
            tail=tail, next_assign=self.next_assign, prev_instance=prev_instance
        )
        if self._ticker is None:
            self._start_ticker()
        for pending in self.pending_sends.values():
            if not pending.future.resolved:
                self._transmit_request(pending)
        self._after_commit_advance()
        self.wakeup.notify_all()
        return list(self.view)
