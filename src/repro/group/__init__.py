"""Reliable, totally-ordered group communication (Amoeba-style).

This package implements the primitives of the paper's Fig. 1 —
CreateGroup, JoinGroup, LeaveGroup, SendToGroup, ReceiveFromGroup,
ResetGroup, GetInfoGroup — using the sequencer-based ("PB method")
protocol of Kaashoek & Tanenbaum (1991):

* a member sends its message point-to-point to the current
  **sequencer**;
* the sequencer assigns the next global sequence number and
  *multicasts* the message (one frame on the wire);
* with resilience degree ``r > 0``, members acknowledge receipt and
  the sequencer only **commits** (allows delivery of) a message once
  ``r`` other members hold it, so the message survives any ``r``
  processor failures;
* gaps are repaired by retransmission requests; sequencer heartbeats
  carry the commit horizon and double as the failure detector.

A ``SendToGroup`` with ``r = 2`` in a three-member group costs five
packets (request, multicast, two acks, commit) — the exact count the
paper's section 3.1 analysis uses.

Failures surface as :class:`~repro.errors.GroupFailure` from the send
and receive primitives; the application then calls ``reset`` to
rebuild the group from the surviving members (two-phase, coordinator
arbitrated), or runs its own recovery if the reset cannot reach the
quorum it needs.
"""

from repro.group.kernel import GroupKernel, ResilienceChange
from repro.group.member import GroupInfo, GroupMember
from repro.group.timings import GroupTimings

__all__ = [
    "GroupInfo",
    "GroupKernel",
    "GroupMember",
    "GroupTimings",
    "ResilienceChange",
]
