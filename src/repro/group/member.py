"""Application-facing group-communication primitives.

:class:`GroupMember` exposes the seven calls of the paper's Fig. 1 as
simulation generators (use with ``yield from`` inside a process):

==================  =====================================================
``create``          CreateGroup — form a new group with only this member
``join``            JoinGroup — become a member of an existing group
``leave``           LeaveGroup — leave gracefully
``send_to_group``   SendToGroup — reliable, totally-ordered multicast
``receive``         ReceiveFromGroup — next message in sequence
``reset``           ResetGroup — rebuild the group after a failure
``info``            GetInfoGroup — group state snapshot (zero-cost)
==================  =====================================================

``send_to_group`` returns only when the message is *r-safe*: with the
group's resilience degree ``r``, the message survives any ``r``
processor crashes. ``receive`` raises
:class:`~repro.errors.GroupFailure` when a member or sequencer failure
is detected, after which the application calls ``reset`` (or runs its
recovery protocol, as the directory service does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import GroupFailure, GroupResetFailed, TimeoutError as SimTimeout
from repro.group.kernel import (
    CONTROL_SIZE,
    STATE_FAILED,
    STATE_IDLE,
    STATE_MEMBER,
    BcRecord,
    GroupKernel,
    ResilienceChange,
)
from repro.group.timings import GroupTimings
from repro.rpc.transport import Transport


@dataclass(frozen=True)
class GroupInfo:
    """Snapshot returned by GetInfoGroup."""

    state: str
    view: tuple
    incarnation: int
    sequencer: Any
    resilience: int
    #: Highest contiguous seqno this kernel holds (buffered messages).
    received: int
    #: Highest seqno known committed (deliverable).
    committed: int
    #: Highest seqno the application has consumed via receive().
    taken: int

    @property
    def buffered(self) -> int:
        """Messages the kernel holds that the app has not consumed.

        This is the quantity the paper's read path checks (Fig. 5): a
        server must apply everything it has *received* before serving
        a read, or a client could miss its own completed write.
        """
        return self.received - self.taken

    @property
    def size(self) -> int:
        return len(self.view)


class GroupMember:
    """One process's handle on one group."""

    def __init__(
        self,
        transport: Transport,
        group: str,
        timings: GroupTimings | None = None,
    ):
        self.transport = transport
        self.sim = transport.sim
        self.group = group
        self.kernel = GroupKernel(transport, group, timings)
        self.timings = self.kernel.timings

    # -- introspection ------------------------------------------------------

    @property
    def address(self):
        return self.kernel.me

    @property
    def is_member(self) -> bool:
        return self.kernel.state == STATE_MEMBER

    @property
    def is_sequencer(self) -> bool:
        return self.is_member and self.kernel.sequencer == self.kernel.me

    def info(self) -> GroupInfo:
        """GetInfoGroup: zero-cost state snapshot."""
        k = self.kernel
        return GroupInfo(
            state=k.state,
            view=tuple(k.view),
            incarnation=k.incarnation,
            sequencer=k.sequencer,
            resilience=k.resilience,
            received=k.received,
            committed=k.committed,
            taken=k.taken,
        )

    # -- membership -----------------------------------------------------------

    def create(self, resilience: int = 0) -> None:
        """CreateGroup: start a new group containing only this member."""
        self.kernel.create(resilience)

    def join(self, attempts: int | None = None):
        """JoinGroup: broadcast until an existing sequencer admits us.

        Returns the new view; raises GroupFailure when no group
        answered (the caller may then CreateGroup, as the recovery
        protocol in the paper's Fig. 6 does).
        """
        rounds = attempts if attempts is not None else self.timings.join_attempts
        for _ in range(rounds):
            fut = self.kernel.start_join()
            try:
                view = yield self.sim.timeout(
                    fut, self.timings.join_timeout_ms, "join timeout"
                )
                return view
            except SimTimeout:
                continue
        self.kernel._join_waiter = None
        raise GroupFailure(f"no sequencer answered {rounds} join broadcasts")

    def leave(self):
        """LeaveGroup: graceful departure (waits for the view change)."""
        self.kernel.announce_leave()
        yield from self.kernel.wakeup.wait_until(
            lambda: self.kernel.state != STATE_MEMBER
        )
        self.kernel.state = STATE_IDLE

    def set_resilience(self, resilience: int):
        """Change the group's resilience degree at runtime.

        The change is an *ordered group operation*: it is sequenced
        like any message, and every member adopts the new degree at
        the same sequence number. Returns that seqno once the marker
        itself is safe (committed under the new degree).
        """
        seqno = yield self.kernel.submit(
            ResilienceChange(resilience), CONTROL_SIZE
        )
        return seqno

    # -- messaging ----------------------------------------------------------------

    def send_to_group(self, payload: Any, size: int = 128, msg_id: tuple | None = None):
        """SendToGroup: returns the assigned seqno once r-safe.

        *msg_id* lets the application pre-mint the message id (via
        ``kernel.new_msg_id()``) so trace events emitted before the
        submit share the message's lineage.
        """
        seqno = yield self.kernel.submit(payload, size, msg_id=msg_id)
        return seqno

    def receive(self):
        """ReceiveFromGroup: the next message in total order.

        Returns a :class:`BcRecord`; raises GroupFailure when the
        kernel detects a member/sequencer failure (call ``reset``).
        """
        kernel = self.kernel
        while True:
            if kernel.state == STATE_FAILED:
                raise GroupFailure(kernel.failure_reason or "group failed")
            if kernel.state == STATE_MEMBER and kernel.taken < kernel.committed:
                next_seqno = kernel.taken + 1
                record = kernel.history.get(next_seqno)
                if record is not None:
                    kernel.taken = next_seqno
                    self._note_delivery(record)
                    return record
            yield kernel.wakeup.wait()

    def receive_ready(self, limit: int | None = None) -> list[BcRecord]:
        """Drain every currently deliverable message without blocking.

        Returns the (possibly empty) list of records that were already
        committed and buffered, in total order — the group-commit
        batching hook: after a blocking :meth:`receive` returns the
        head of a burst, the application grabs the rest of the burst
        here and persists the whole batch in one storage operation.
        *limit* bounds the drain (``None`` = everything deliverable).
        Costs zero simulated time and never raises.
        """
        batch: list[BcRecord] = []
        while limit is None or len(batch) < limit:
            record = self.try_receive()
            if record is None:
                break
            batch.append(record)
        return batch

    def try_receive(self) -> BcRecord | None:
        """Non-blocking receive; None when nothing is deliverable."""
        kernel = self.kernel
        if kernel.state != STATE_MEMBER or kernel.taken >= kernel.committed:
            return None
        record = kernel.history.get(kernel.taken + 1)
        if record is not None:
            kernel.taken += 1
            self._note_delivery(record)
        return record

    def _note_delivery(self, record: BcRecord) -> None:
        """Count + trace one ordered delivery to the application."""
        kernel = self.kernel
        kernel._c_delivered.inc()
        kernel._update_backlog()
        if kernel._obs.tracer.enabled:
            kernel._obs.tracer.emit(
                str(kernel.me), "group", "grp.deliver",
                lineage=record.msg_id, seqno=record.seqno,
            )

    # -- reset ------------------------------------------------------------------

    def reset(self, max_rounds: int = 8):
        """ResetGroup: rebuild from surviving members after a failure.

        Returns the new view. Concurrent resetters arbitrate by
        (incarnation, address); losers adopt the winner's view. Raises
        GroupResetFailed when no view forms within *max_rounds*.
        """
        kernel = self.kernel
        rng = self.sim.rng.stream(f"grp.reset.{kernel.me}")
        cand_inc = kernel.incarnation + 1
        for _ in range(max_rounds):
            if kernel.state == STATE_MEMBER:
                return list(kernel.view)  # someone else's reset included us
            key = kernel.begin_reset_round(cand_inc)
            if key is None:
                # A stronger candidate holds our promise; wait for its view.
                yield self.sim.sleep(
                    self.timings.reset_vote_window_ms
                    + rng.uniform(
                        self.timings.reset_backoff_min_ms,
                        self.timings.reset_backoff_max_ms,
                    )
                )
                cand_inc = max(cand_inc, kernel._promise[0]) + 1
                continue
            yield self.sim.sleep(self.timings.reset_vote_window_ms)
            if kernel.state == STATE_MEMBER:
                return list(kernel.view)
            view = kernel.conclude_reset(key)
            if view is not None:
                return view
            cand_inc = max(cand_inc, kernel._promise[0]) + 1
        raise GroupResetFailed(
            f"reset of group {self.group!r} failed after {max_rounds} rounds"
        )

    # -- waiting helpers (used by the directory server's read path) -----------

    def wait_applied(self, target_seqno: int, applied: "callable"):
        """Block until ``applied() >= target_seqno`` or the group fails.

        *applied* is the application's own progress counter (the
        directory server's last-applied kernel seqno). The application
        must call :meth:`notify_progress` after advancing it. Mirrors
        the ``wait until seqno = buffered_seqno`` step of Fig. 5.
        """
        kernel = self.kernel
        while applied() < target_seqno:
            if kernel.state == STATE_FAILED:
                raise GroupFailure(kernel.failure_reason or "group failed")
            yield kernel.wakeup.wait()

    def notify_progress(self) -> None:
        """Wake processes blocked in :meth:`wait_applied` (call after
        the application applies a received message)."""
        self.kernel.wakeup.notify_all()

    def crash(self) -> None:
        """Tear down with the machine (kills the kernel ticker)."""
        self.kernel.crash()
