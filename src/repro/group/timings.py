"""Protocol timing knobs for the group layer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GroupTimings:
    """All group-protocol timeouts, in simulated milliseconds.

    The defaults suit the paper's LAN: packet latency well under a
    millisecond, so tens of milliseconds of silence mean trouble.
    Recovery benchmarks vary these to study detection-latency
    trade-offs.
    """

    #: Sequencer heartbeat period (heartbeats carry the commit horizon).
    heartbeat_interval_ms: float = 25.0
    #: A member declares the sequencer dead after this much silence.
    heartbeat_timeout_ms: float = 120.0
    #: The sequencer declares a member dead after this much echo silence.
    echo_timeout_ms: float = 120.0
    #: Sender retransmits its request if not sequenced within this time.
    send_retry_ms: float = 60.0
    #: Retransmission attempts before the sender declares group failure.
    send_retries: int = 3
    #: How long a reset coordinator collects votes before forming a view.
    reset_vote_window_ms: float = 25.0
    #: How long one join broadcast waits for a sequencer's answer.
    join_timeout_ms: float = 40.0
    #: Join broadcast attempts before JoinGroup gives up.
    join_attempts: int = 3
    #: Backoff bounds before a losing reset coordinator retries.
    reset_backoff_min_ms: float = 10.0
    reset_backoff_max_ms: float = 40.0
