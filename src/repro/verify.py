"""Consistency checking: histories and session guarantees.

The paper requires one-copy serializability for individual directory
operations (section 2). Full linearizability checking is overkill for
a test suite, but two strong, cheap invariants catch real protocol
bugs:

* **replica equality** — after quiescence, every operational replica's
  state fingerprint matches (the cluster classes expose this);
* **session guarantees per key** — when each client works on its own
  names (the shape our concurrency tests use), every read a client
  performs must reflect exactly that client's own preceding writes:
  read-your-writes and monotonic reads combined. Any stale or lost
  update shows up as a violation.

:class:`HistoryRecorder` collects client-side events;
:func:`check_private_key_history` verifies the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class HistoryEvent:
    """One completed client operation."""

    client: str
    kind: str  # "append", "delete", "lookup"
    key: Any  # (directory object number, name)
    value: Any  # capability written, or lookup result
    start_ms: float
    end_ms: float


@dataclass
class HistoryRecorder:
    """Accumulates events from any number of client drivers."""

    events: list[HistoryEvent] = field(default_factory=list)

    def record(self, client, kind, key, value, start_ms, end_ms) -> None:
        self.events.append(
            HistoryEvent(client, kind, key, value, start_ms, end_ms)
        )

    def by_client(self) -> dict[str, list[HistoryEvent]]:
        out: dict[str, list[HistoryEvent]] = {}
        for event in self.events:
            out.setdefault(event.client, []).append(event)
        for events in out.values():
            events.sort(key=lambda e: e.start_ms)
        return out


@dataclass
class Violation:
    """One broken session guarantee."""

    client: str
    event: HistoryEvent
    expected: Any
    explanation: str


def check_private_key_history(history: HistoryRecorder) -> list[Violation]:
    """Verify read-your-writes on keys private to each client.

    Assumes no two clients touch the same key (the caller arranges
    that). For each client, a lookup must return the capability of the
    client's latest preceding append, or None after a delete / before
    any append.
    """
    violations: list[Violation] = []
    for client, events in history.by_client().items():
        expected: dict[Any, Any] = {}
        for event in events:
            if event.kind == "append":
                expected[event.key] = event.value
            elif event.kind == "delete":
                expected[event.key] = None
            elif event.kind == "lookup":
                want = expected.get(event.key)
                if event.value != want:
                    violations.append(
                        Violation(
                            client,
                            event,
                            want,
                            f"lookup of {event.key} returned {event.value!r}, "
                            f"but this client's own writes imply {want!r}",
                        )
                    )
    return violations


@dataclass
class InvariantReport:
    """Combined verdict of all post-quiescence checks on one run.

    ``replicas_equal`` covers operational replicas only; when fewer
    than a majority are operational the run counts as *unavailable*
    (the service refused rather than diverged), which callers treat as
    a separate, legitimate outcome — see :mod:`repro.chaos`.
    """

    operational: int
    total_servers: int
    replicas_equal: bool
    session_violations: list[Violation] = field(default_factory=list)
    lost_updates: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.replicas_equal
            and not self.session_violations
            and not self.lost_updates
        )

    def problems(self) -> list[str]:
        out = []
        if not self.replicas_equal:
            out.append("operational replicas hold divergent state")
        out.extend(v.explanation for v in self.session_violations)
        out.extend(self.lost_updates)
        return out


def check_cluster(
    cluster, history: HistoryRecorder, final_names: set | None = None
) -> InvariantReport:
    """Run every invariant against a quiesced cluster + client history.

    *final_names* is the final listing used for the lost-update check;
    pass None to skip it (e.g. when no replica is reachable to read
    the final state from).
    """
    operational = cluster.operational_servers()
    report = InvariantReport(
        operational=len(operational),
        total_servers=len(cluster.servers),
        replicas_equal=cluster.replicas_consistent(),
        session_violations=check_private_key_history(history),
    )
    if final_names is not None:
        report.lost_updates = check_no_lost_updates(history, final_names)
    return report


def check_no_lost_updates(history: HistoryRecorder, final_names: set) -> list[str]:
    """Every name a client appended (and never deleted) must exist in
    the final listing, and every deleted name must be absent."""
    problems = []
    last_write: dict[Any, tuple[str, Any]] = {}
    for event in sorted(history.events, key=lambda e: e.end_ms):
        if event.kind in ("append", "delete"):
            last_write[event.key] = (event.kind, event.value)
    for key, (kind, _value) in last_write.items():
        name = key[1] if isinstance(key, tuple) else key
        if kind == "append" and name not in final_names:
            problems.append(f"appended name {name!r} missing from final state")
        if kind == "delete" and name in final_names:
            problems.append(f"deleted name {name!r} still in final state")
    return problems
