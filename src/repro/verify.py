"""Consistency checking: histories and session guarantees.

The paper requires one-copy serializability for individual directory
operations (section 2). Full linearizability checking is overkill for
a test suite, but two strong, cheap invariants catch real protocol
bugs:

* **replica equality** — after quiescence, every operational replica's
  state fingerprint matches (the cluster classes expose this);
* **session guarantees per key** — when each client works on its own
  names (the shape our concurrency tests use), every read a client
  performs must reflect exactly that client's own preceding writes:
  read-your-writes and monotonic reads combined. Any stale or lost
  update shows up as a violation.

:class:`HistoryRecorder` collects client-side events;
:func:`check_private_key_history` verifies the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class HistoryEvent:
    """One completed client operation."""

    client: str
    kind: str  # "append", "delete", "lookup"
    key: Any  # (directory object number, name)
    value: Any  # capability written, or lookup result
    start_ms: float
    end_ms: float
    #: Where a lookup's value came from: ``"server"`` (a remote RPC
    #: answered it) or ``"cache"`` (the client's coherent lookup cache
    #: served it without any network round trip). Cache-served reads
    #: are checked by exactly the same register model as server reads —
    #: that is the point: the coherence protocol must make them
    #: indistinguishable (docs/PROTOCOL.md "Client cache coherence").
    source: str = "server"


@dataclass
class HistoryRecorder:
    """Accumulates events from any number of client drivers."""

    events: list[HistoryEvent] = field(default_factory=list)

    def record(
        self, client, kind, key, value, start_ms, end_ms, source="server"
    ) -> None:
        self.events.append(
            HistoryEvent(client, kind, key, value, start_ms, end_ms, source)
        )

    def cache_served_reads(self) -> int:
        """How many recorded lookups were served from a client cache.

        Chaos scenarios that exist to hunt stale cached reads use this
        as a non-vacuity check: a run in which no read ever came from a
        cache proves nothing about coherence.
        """
        return sum(1 for e in self.events if e.source == "cache")

    def by_client(self) -> dict[str, list[HistoryEvent]]:
        out: dict[str, list[HistoryEvent]] = {}
        for event in self.events:
            out.setdefault(event.client, []).append(event)
        for events in out.values():
            events.sort(key=lambda e: e.start_ms)
        return out


@dataclass
class Violation:
    """One broken session guarantee."""

    client: str
    event: HistoryEvent
    expected: Any
    explanation: str


def check_private_key_history(history: HistoryRecorder) -> list[Violation]:
    """Verify read-your-writes on keys private to each client.

    Assumes no two clients touch the same key (the caller arranges
    that). For each client, a lookup must return the capability of the
    client's latest preceding append, or None after a delete / before
    any append.
    """
    violations: list[Violation] = []
    for client, events in history.by_client().items():
        expected: dict[Any, Any] = {}
        for event in events:
            if event.kind == "append":
                expected[event.key] = event.value
            elif event.kind == "delete":
                expected[event.key] = None
            elif event.kind == "lookup":
                want = expected.get(event.key)
                if event.value != want:
                    violations.append(
                        Violation(
                            client,
                            event,
                            want,
                            f"lookup of {event.key} returned {event.value!r}, "
                            f"but this client's own writes imply {want!r}",
                        )
                    )
    return violations


#: Linearizability-search budget: DFS states explored per key before
#: the checker declares the key undecided (treated as a pass — the
#: checker is a bug detector, not a prover).
LINEARIZABILITY_STATE_BUDGET = 200_000

#: History kinds whose effect is unknown (the client's retry rounds
#: were exhausted by an RPC failure, so the write may or may not have
#: been applied). The checker treats them as *optional* writes.
AMBIGUOUS_KINDS = {"append?", "delete?"}


@dataclass
class _RegisterOp:
    """One operation in the per-key register model."""

    is_write: bool
    value: Any  # written value, or the value a read observed
    start: float
    end: float
    optional: bool  # ambiguous write: may never have taken effect


def check_shared_key_linearizability(history: HistoryRecorder) -> list[str]:
    """Per-key linearizability of a shared-key history (Wing & Gong).

    Each key is modelled as a register: ``append`` writes the recorded
    capability, ``delete`` writes None, ``lookup`` reads. Keys are
    independent registers, so each is checked separately with a DFS
    over linearization orders (memoized on the set of linearized ops
    plus the register value). Ambiguous writes — kind ``"append?"`` or
    ``"delete?"``, recorded when a retry-safe client ran out of retry
    rounds — are optional: the search may linearize them or not, and
    their invocation never constrains other operations' order (their
    response time is unknown, i.e. infinite).

    Returns one message per non-linearizable key. A key whose search
    exhausts the state budget counts as undecided, not as a violation.
    """
    per_key: dict[Any, list[_RegisterOp]] = {}
    for event in history.events:
        kind = event.kind
        optional = kind in AMBIGUOUS_KINDS
        base = kind.rstrip("?")
        if base == "append":
            op = _RegisterOp(True, event.value, event.start_ms,
                             float("inf") if optional else event.end_ms, optional)
        elif base == "delete":
            op = _RegisterOp(True, None, event.start_ms,
                             float("inf") if optional else event.end_ms, optional)
        elif base == "lookup":
            op = _RegisterOp(False, event.value, event.start_ms,
                             event.end_ms, False)
        else:
            continue
        per_key.setdefault(event.key, []).append(op)

    problems: list[str] = []
    for key, ops in sorted(per_key.items(), key=lambda item: repr(item[0])):
        ok, exhausted = _key_linearizable(ops)
        if not ok and not exhausted:
            problems.append(
                f"key {key!r}: history of {len(ops)} operations is not "
                f"linearizable as a register"
            )
    return problems


def _key_linearizable(ops: list[_RegisterOp]) -> tuple[bool, bool]:
    """(linearizable, budget_exhausted) for one key's operations."""
    ops = sorted(ops, key=lambda op: (op.start, op.end))
    mandatory = frozenset(
        i for i, op in enumerate(ops) if not op.optional
    )
    n = len(ops)
    seen: set[tuple[frozenset, Any]] = set()
    budget = LINEARIZABILITY_STATE_BUDGET

    def dfs(done: frozenset, value) -> bool:
        nonlocal budget
        if mandatory <= done:
            return True
        state = (done, value)
        if state in seen:
            return False
        seen.add(state)
        budget -= 1
        if budget <= 0:
            raise _BudgetExhausted
        # Minimal ops: nothing still pending finished strictly before
        # this one started (real-time order must be respected).
        frontier = min(
            (ops[j].end for j in range(n) if j not in done and not ops[j].optional),
            default=float("inf"),
        )
        for i in range(n):
            if i in done:
                continue
            op = ops[i]
            if op.start > frontier:
                continue
            if op.is_write:
                if dfs(done | {i}, op.value):
                    return True
            elif _values_equal(op.value, value):
                if dfs(done | {i}, value):
                    return True
        return False

    try:
        return dfs(frozenset(), None), False
    except _BudgetExhausted:
        return True, True


class _BudgetExhausted(Exception):
    pass


def _values_equal(a, b) -> bool:
    return a == b


def check_exactly_once_applies(trace_events) -> list[str]:
    """No (client, session seqno) pair may be *executed* twice.

    Scans ``dir.apply.end`` trace events: for each node, every
    session-stamped apply that both succeeded (``failed=False``) and
    was not a dedup-cache hit (``dedup=False``) must be unique per
    (client, seqno). A duplicate means the session table failed to
    suppress a resend — the exactly-once bug this layer exists to
    prevent. Works on live TraceEvent objects or exported dicts.
    """
    applied: dict[tuple, int] = {}
    for event in trace_events:
        name = event.name if hasattr(event, "name") else event.get("name")
        if name != "dir.apply.end":
            continue
        args = event.args if hasattr(event, "args") else event.get("args", {})
        node = event.node if hasattr(event, "node") else event.get("node")
        client = args.get("client")
        sess = args.get("sess")
        if client is None or sess is None:
            continue
        if args.get("failed") or args.get("dedup"):
            continue
        key = (str(node), client, sess)
        applied[key] = applied.get(key, 0) + 1
    return [
        f"node {node}: session op ({client!r}, seq {sess}) executed "
        f"{count} times (duplicate application)"
        for (node, client, sess), count in sorted(applied.items(), key=repr)
        if count > 1
    ]


@dataclass
class InvariantReport:
    """Combined verdict of all post-quiescence checks on one run.

    ``replicas_equal`` covers operational replicas only; when fewer
    than a majority are operational the run counts as *unavailable*
    (the service refused rather than diverged), which callers treat as
    a separate, legitimate outcome — see :mod:`repro.chaos`.
    """

    operational: int
    total_servers: int
    replicas_equal: bool
    session_violations: list[Violation] = field(default_factory=list)
    lost_updates: list[str] = field(default_factory=list)
    linearizability_violations: list[str] = field(default_factory=list)
    duplicate_applies: list[str] = field(default_factory=list)
    resilience_problems: list[str] = field(default_factory=list)
    durability_problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.replicas_equal
            and not self.session_violations
            and not self.lost_updates
            and not self.linearizability_violations
            and not self.duplicate_applies
            and not self.resilience_problems
            and not self.durability_problems
        )

    def problems(self) -> list[str]:
        out = []
        if not self.replicas_equal:
            out.append("operational replicas hold divergent state")
        out.extend(v.explanation for v in self.session_violations)
        out.extend(self.lost_updates)
        out.extend(self.linearizability_violations)
        out.extend(self.duplicate_applies)
        out.extend(self.resilience_problems)
        out.extend(self.durability_problems)
        return out


def check_resilience_restored(cluster) -> list[str]:
    """The self-driving contract: the cluster is back at its DECLARED
    shape after the faults (and the settle tail).

    Checks, against ``cluster.declared_n_servers`` and
    ``cluster.declared_resilience`` (captured at build time):

    * the configured server set holds the declared number of replicas
      (an eviction must have been re-replicated onto a spare);
    * that many replicas are operational;
    * every operational replica's view contains the whole server set;
    * the service's resilience degree — shared config AND every
      operational kernel — is back at the declared value (remediation
      may scale it temporarily, but must scale it back).

    Returns one message per violation; clusters without a declared
    shape (other deployment kinds) vacuously pass.
    """
    declared_n = getattr(cluster, "declared_n_servers", None)
    declared_r = getattr(cluster, "declared_resilience", None)
    if declared_n is None or declared_r is None:
        return []
    problems: list[str] = []
    addresses = tuple(cluster.config.server_addresses)
    if len(addresses) != declared_n:
        problems.append(
            f"server set holds {len(addresses)} addresses; "
            f"declared size is {declared_n}"
        )
    operational = cluster.operational_servers()
    if len(operational) < declared_n:
        problems.append(
            f"only {len(operational)}/{declared_n} declared replicas are "
            f"operational"
        )
    if cluster.config.resilience != declared_r:
        problems.append(
            f"service resilience degree is {cluster.config.resilience}; "
            f"declared degree is {declared_r}"
        )
    for server in operational:
        info = server.member.info()
        missing = [str(a) for a in addresses if a not in info.view]
        if missing:
            problems.append(
                f"server {server.index}: view is missing {missing}"
            )
        if info.resilience != declared_r:
            problems.append(
                f"server {server.index}: kernel resilience degree is "
                f"{info.resilience}; declared degree is {declared_r}"
            )
    return problems


def check_durability(cluster) -> list[str]:
    """The storage-integrity contract (docs/PROTOCOL.md, "Storage
    integrity"): no corrupt byte was ever served, and every
    operational replica's durable blocks hold what it acknowledged.

    Two parts, in a deliberate order:

    * **counter evidence, read first** (the audit below peeks blocks
      and must not pollute it): any nonzero ``disk.corrupt_served`` or
      ``nvram.corrupt_replayed`` counter means some read returned
      damaged bytes as if they were good — the silent-corruption
      failure mode the integrity envelope exists to prevent. The
      chaos suite's ``integrity_off`` control run must fail here,
      proving the check is not vacuous.
    * **a zero-time disk audit** of every operational replica: each
      mapped admin-partition block must hold exactly what the RAM
      mirrors say was last flushed there. Unrepaired bit rot, lost or
      misdirected writes, and torn batch tails all surface as
      mismatches (a failed checksum counts as one too).
    """
    problems: list[str] = []
    registry = cluster.obs.registry
    for metric in ("disk.corrupt_served", "nvram.corrupt_replayed"):
        for node, counter in registry.find_counters(metric):
            if counter.value:
                problems.append(
                    f"{node}: {metric} = {counter.value} "
                    f"(corrupt bytes served as good data)"
                )
    for server in cluster.operational_servers():
        admin = getattr(server, "admin", None)
        if admin is None:
            continue
        for index, expected in sorted(admin.expected_blocks().items()):
            if not admin.verify_block(index, expected):
                problems.append(
                    f"server {server.index}: admin block {index} does not "
                    f"hold its acknowledged contents (unrepaired rot, or a "
                    f"lost/torn/misdirected write)"
                )
    return problems


def check_cluster(
    cluster,
    history: HistoryRecorder,
    final_names: set | None = None,
    private_keys: bool = True,
    trace_events=None,
    check_resilience: bool = False,
    durability: bool = False,
) -> InvariantReport:
    """Run every invariant against a quiesced cluster + client history.

    *final_names* is the final listing used for the lost-update check;
    pass None to skip it (e.g. when no replica is reachable to read
    the final state from). With ``private_keys=False`` the per-client
    read-your-writes and last-writer checks (which assume disjoint key
    sets) are replaced by the shared-key linearizability checker.
    Pass the run's trace events (``cluster.obs.tracer.events()`` or
    the exported dicts) as *trace_events* to also scan for duplicate
    session-op applications. With ``check_resilience=True`` the report
    also includes :func:`check_resilience_restored` (elastic clusters
    under remediation must end at their declared shape); with
    ``durability=True`` it also includes :func:`check_durability`
    (no corrupt byte served, durable blocks match acknowledgements).
    """
    operational = cluster.operational_servers()
    report = InvariantReport(
        operational=len(operational),
        total_servers=sum(1 for s in cluster.servers if s is not None),
        replicas_equal=cluster.replicas_consistent(),
    )
    if private_keys:
        report.session_violations = check_private_key_history(history)
        if final_names is not None:
            report.lost_updates = check_no_lost_updates(history, final_names)
    else:
        report.linearizability_violations = check_shared_key_linearizability(
            history
        )
    if trace_events is not None:
        report.duplicate_applies = check_exactly_once_applies(trace_events)
    if check_resilience:
        report.resilience_problems = check_resilience_restored(cluster)
    if durability:
        report.durability_problems = check_durability(cluster)
    return report


def check_no_lost_updates(history: HistoryRecorder, final_names: set) -> list[str]:
    """Every name a client appended (and never deleted) must exist in
    the final listing, and every deleted name must be absent."""
    problems = []
    last_write: dict[Any, tuple[str, Any]] = {}
    for event in sorted(history.events, key=lambda e: e.end_ms):
        if event.kind in ("append", "delete"):
            last_write[event.key] = (event.kind, event.value)
    for key, (kind, _value) in last_write.items():
        name = key[1] if isinstance(key, tuple) else key
        if kind == "append" and name not in final_names:
            problems.append(f"appended name {name!r} missing from final state")
        if kind == "delete" and name in final_names:
            problems.append(f"deleted name {name!r} still in final state")
    return problems
