"""Render experiment results next to the paper's reported numbers."""

from __future__ import annotations

from repro.bench import harness as _h

_IMPL_LABELS = {
    "group": "Group (3)",
    "rpc": "RPC (2)",
    "nfs": "Sun NFS (1)",
    "nvram": "Group+NVRAM (3)",
}

_TEST_LABELS = {
    "append_delete": "Append-delete",
    "tmp_file": "Tmp file",
    "lookup": "Directory lookup",
}


def format_fig7(measured: dict) -> str:
    """ASCII rendering of Fig. 7 with measured vs paper columns."""
    lines = [
        "Fig. 7 — latency of directory operations (ms), measured vs paper",
        "-" * 78,
        f"{'Operation':<18}" + "".join(
            f"{_IMPL_LABELS[i]:>15}" for i in _h.IMPLEMENTATIONS
        ),
    ]
    for test in ("append_delete", "tmp_file", "lookup"):
        cells = []
        for impl in _h.IMPLEMENTATIONS:
            got = measured[test][impl]
            want = _h.PAPER_FIG7[test][impl]
            cells.append(f"{got:7.1f}/{want:<4d} ")
        lines.append(f"{_TEST_LABELS[test]:<18}" + "".join(f"{c:>15}" for c in cells))
    lines.append("-" * 78)
    lines.append("(each cell: measured / paper)")
    return "\n".join(lines)


def format_throughput_curve(
    title: str, curves: dict[str, dict[int, float]], unit: str
) -> str:
    """ASCII rendering of a Fig. 8/9-style curve set.

    *curves* maps implementation -> {n_clients: throughput}.
    """
    client_counts = sorted({n for c in curves.values() for n in c})
    lines = [title, "-" * 72]
    header = f"{'clients':<9}" + "".join(
        f"{_IMPL_LABELS.get(i, i):>18}" for i in curves
    )
    lines.append(header)
    for n in client_counts:
        row = f"{n:<9}"
        for impl in curves:
            value = curves[impl].get(n)
            row += f"{value:>18.1f}" if value is not None else f"{'-':>18}"
        lines.append(row)
    lines.append("-" * 72)
    lines.append(f"({unit})")
    return "\n".join(lines)


def shape_check_fig7(measured: dict, tolerance: float = 0.35) -> list[str]:
    """The orderings and ratios the reproduction must preserve.

    Returns a list of violated claims (empty = shape reproduced).
    """
    problems = []
    ad, tf = measured["append_delete"], measured["tmp_file"]

    def claim(condition: bool, text: str) -> None:
        if not condition:
            problems.append(text)

    claim(ad["group"] < ad["rpc"], "group append-delete should beat RPC")
    claim(tf["group"] < tf["rpc"], "group tmp-file should beat RPC")
    claim(ad["nvram"] < ad["nfs"], "NVRAM should beat even Sun NFS")
    ratio = ad["group"] / ad["nvram"]
    claim(4.0 < ratio < 10.0, f"NVRAM speedup on append-delete = {ratio:.1f}, "
                              "paper reports 6.8x")
    claim(ad["nfs"] < ad["group"], "NFS (no fault tolerance) should beat group")
    factor = ad["group"] / ad["nfs"]
    claim(1.5 < factor < 3.0, f"fault-tolerance cost factor = {factor:.1f}, "
                              "paper reports 2.1x")
    for impl in _h.IMPLEMENTATIONS:
        got, want = measured["lookup"][impl], _h.PAPER_FIG7["lookup"][impl]
        claim(abs(got - want) / want < tolerance,
              f"lookup latency for {impl}: {got:.1f} vs paper {want}")
    return problems
