"""Experiment runners for the paper's evaluation (section 4).

Implementations are addressed by name:

* ``"group"`` — the triplicated group-communication service;
* ``"rpc"`` — the duplicated RPC service (previous design);
* ``"nfs"`` — the single-copy SunOS/NFS-like baseline;
* ``"nvram"`` — the group service with the 24 KB NVRAM board.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import (
    GroupServiceCluster,
    NfsServiceCluster,
    NvramServiceCluster,
    RpcServiceCluster,
)
from repro.directory.nfs_server import NfsFileClient
from repro.storage.bullet import BulletClient
from repro.workloads.clients import ClosedLoopClient, run_closed_loop
from repro.workloads.generators import (
    append_delete_once,
    lookup_once,
    tmp_file_once,
)
from repro.workloads.metrics import Metrics

IMPLEMENTATIONS = ("group", "rpc", "nfs", "nvram")

#: Fig. 7 of the paper, msec (columns: implementation).
PAPER_FIG7 = {
    "append_delete": {"group": 184, "rpc": 192, "nfs": 87, "nvram": 27},
    "tmp_file": {"group": 215, "rpc": 277, "nfs": 111, "nvram": 52},
    "lookup": {"group": 5, "rpc": 5, "nfs": 6, "nvram": 5},
}

#: Saturation throughputs the paper reports around Figs. 8 and 9.
PAPER_SATURATION = {
    "lookup": {"group": 652, "rpc": 520, "nvram": 652},
    "append_delete": {"group": 5, "rpc": 5, "nvram": 45},
}


@dataclass
class Deployment:
    """A booted cluster plus its file service for the tmp-file test."""

    impl: str
    cluster: object

    def add_client(self, name: str):
        return self.cluster.add_client(name)

    def file_service_for(self, directory_client):
        """A file-service client sharing the directory client's RPC."""
        if self.impl == "nfs":
            return NfsFileClient(
                directory_client.rpc, self.cluster.file_server.port
            )
        return BulletClient(directory_client.rpc, self.cluster.sites[0].bullet.port)

    @property
    def root(self):
        return self.cluster.root_capability

    @property
    def sim(self):
        return self.cluster.sim


def build_deployment(impl: str, seed: int = 0, **kwargs) -> Deployment:
    """Boot one implementation and wait until it serves."""
    if impl == "group":
        cluster = GroupServiceCluster(seed=seed, name="grp", **kwargs)
    elif impl == "rpc":
        cluster = RpcServiceCluster(seed=seed, name="rpc", **kwargs)
    elif impl == "nfs":
        cluster = NfsServiceCluster(seed=seed, name="nfs", **kwargs)
    elif impl == "nvram":
        cluster = NvramServiceCluster(seed=seed, name="nvr", **kwargs)
    else:
        raise ValueError(f"unknown implementation {impl!r}")
    cluster.start()
    cluster.wait_operational()
    return Deployment(impl, cluster)


# ----------------------------------------------------------------------
# Fig. 7: single-client latency
# ----------------------------------------------------------------------

def fig7_cell(impl: str, test: str, iterations: int = 15, seed: int = 0) -> float:
    """Mean latency (ms) of one Fig. 7 cell."""
    deployment = build_deployment(impl, seed=seed)
    client = deployment.add_client("bench")
    sim = deployment.sim
    root = deployment.root
    out = {}

    def driver():
        target = yield from client.create_dir()  # warm locate + a capability
        if test == "lookup":
            yield from client.append_row(root, "bench-name", (target,))
        file_service = deployment.file_service_for(client)
        if test == "tmp_file":
            # Warm the file service's port cache outside the window.
            warm = yield from file_service.create(b"warm")
            yield from file_service.read(warm)
        samples = []
        for i in range(iterations):
            start = sim.now
            if test == "append_delete":
                yield from append_delete_once(client, root, f"t{i}", target)
            elif test == "tmp_file":
                yield from tmp_file_once(client, root, file_service, f"f{i}")
            elif test == "lookup":
                yield from lookup_once(client, root, "bench-name")
            else:
                raise ValueError(f"unknown test {test!r}")
            samples.append(sim.now - start)
        out["mean"] = sum(samples) / len(samples)

    deployment.cluster.run_process(driver())
    return out["mean"]


def fig7_table(iterations: int = 15, seed: int = 0) -> dict:
    """The whole Fig. 7: {test: {impl: measured_ms}}."""
    table: dict = {}
    for test in ("append_delete", "tmp_file", "lookup"):
        table[test] = {}
        for impl in IMPLEMENTATIONS:
            table[test][impl] = fig7_cell(impl, test, iterations, seed)
    return table


# ----------------------------------------------------------------------
# Figs. 8 and 9: multi-client throughput
# ----------------------------------------------------------------------

def lookup_throughput(
    impl: str,
    n_clients: int,
    seed: int = 0,
    warmup_ms: float = 2_000.0,
    measure_ms: float = 10_000.0,
    **deploy_kwargs,
) -> float:
    """One Fig. 8 point: total lookups/second with *n_clients*."""
    deployment = build_deployment(impl, seed=seed, **deploy_kwargs)
    sim = deployment.sim
    root = deployment.root
    metrics = Metrics()

    setup_client = deployment.add_client("setup")

    def setup():
        target = yield from setup_client.create_dir()
        yield from setup_client.append_row(root, "hot-name", (target,))

    deployment.cluster.run_process(setup())

    clients = []
    for i in range(n_clients):
        directory_client = deployment.add_client(f"load{i}")

        def iteration(_n, c=directory_client):
            yield from lookup_once(c, root, "hot-name")

        clients.append(
            ClosedLoopClient(sim, f"load{i}", iteration, metrics, "lookup")
        )
    window = run_closed_loop(sim, clients, warmup_ms, measure_ms)
    return metrics.throughput_per_second("lookup", window)


def update_latency(
    impl: str,
    iterations: int = 20,
    seed: int = 0,
    **deploy_kwargs,
) -> float:
    """Mean single-client append-delete pair latency (ms).

    Unlike :func:`fig7_cell` this accepts deployment overrides, so the
    group-commit bench can compare ``batch_max=1`` against the batched
    default on otherwise identical deployments.
    """
    deployment = build_deployment(impl, seed=seed, **deploy_kwargs)
    client = deployment.add_client("bench")
    sim = deployment.sim
    root = deployment.root
    out = {}

    def driver():
        target = yield from client.create_dir()
        samples = []
        for i in range(iterations):
            start = sim.now
            yield from append_delete_once(client, root, f"t{i}", target)
            samples.append(sim.now - start)
        out["mean"] = sum(samples) / len(samples)

    deployment.cluster.run_process(driver())
    return out["mean"]


def update_throughput(
    impl: str,
    n_clients: int,
    seed: int = 0,
    warmup_ms: float = 2_000.0,
    measure_ms: float = 20_000.0,
    **deploy_kwargs,
) -> float:
    """One Fig. 9 point: append-delete PAIRS/second with *n_clients*."""
    deployment = build_deployment(impl, seed=seed, **deploy_kwargs)
    sim = deployment.sim
    root = deployment.root
    metrics = Metrics()

    setup_client = deployment.add_client("setup")
    target_holder = {}

    def setup():
        target_holder["cap"] = yield from setup_client.create_dir()

    deployment.cluster.run_process(setup())
    target = target_holder["cap"]

    clients = []
    for i in range(n_clients):
        directory_client = deployment.add_client(f"load{i}")

        def iteration(n, c=directory_client, tag=i):
            yield from append_delete_once(c, root, f"w{tag}-{n}", target)

        clients.append(
            ClosedLoopClient(sim, f"load{i}", iteration, metrics, "pair")
        )
    window = run_closed_loop(sim, clients, warmup_ms, measure_ms)
    return metrics.throughput_per_second("pair", window)
