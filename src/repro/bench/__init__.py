"""Benchmark harness: regenerates every table and figure of the paper.

Each experiment function builds a fresh simulated deployment, drives
the paper's workload, and returns structured results;
:mod:`repro.bench.tables` renders them next to the paper's reported
numbers. The ``benchmarks/`` directory wraps these in pytest-benchmark
targets (one per table/figure) and EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from repro.bench.harness import (
    IMPLEMENTATIONS,
    build_deployment,
    fig7_cell,
    fig7_table,
    lookup_throughput,
    update_latency,
    update_throughput,
)
from repro.bench.tables import format_fig7, format_throughput_curve

__all__ = [
    "IMPLEMENTATIONS",
    "build_deployment",
    "fig7_cell",
    "fig7_table",
    "format_fig7",
    "format_throughput_curve",
    "lookup_throughput",
    "update_latency",
    "update_throughput",
]
