"""Canonical scenarios for host-speed measurement.

The paper-facing benchmarks (:mod:`repro.bench.harness`) report
*simulated* latency and throughput. This module runs the same cluster
under fixed closed-loop workloads and reports how fast the **host**
chews through simulated events — the number every raw-speed refactor
is judged by (`python -m repro perf`, ``benchmarks/bench_sim.py``, and
the observability overhead accountant all drive scenarios from here).

Scenarios are deterministic: for a given (scenario, scale, seed) the
event count, operation count, and metrics snapshot are pure functions
of the seed, whether or not a profiler is attached and whatever obs
subsystems are toggled on. :meth:`PerfRun.fingerprint` captures that
invariant for the determinism tests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Any

from repro.bench.harness import build_deployment
from repro.obs import hostprof
from repro.workloads.clients import ClosedLoopClient, run_closed_loop
from repro.workloads.generators import append_delete_once, lookup_once
from repro.workloads.metrics import Metrics

#: Workload sizes. Clients are closed-loop (one outstanding op each);
#: the measure window is simulated milliseconds.
SCALES: dict[str, dict[str, float]] = {
    "small": {"clients": 4, "warmup_ms": 500.0, "measure_ms": 2_000.0},
    "medium": {"clients": 12, "warmup_ms": 1_000.0, "measure_ms": 6_000.0},
    "large": {"clients": 24, "warmup_ms": 1_000.0, "measure_ms": 15_000.0},
}

SCENARIOS = ("lookup", "update", "mixed")

#: In the mixed workload, 1 iteration in 10 is an append/delete pair.
MIXED_UPDATE_EVERY = 10


@dataclass
class PerfRun:
    """Result of one scenario run (see :func:`run_perf_scenario`)."""

    scenario: str
    scale: str
    seed: int
    ops: int
    errors: int
    sim_ms: float
    scheduled_events: int
    wall_ns: int
    trace_enabled: bool
    monitor_enabled: bool
    registry_digest: str
    capture: Any = None  # hostprof.Capture when profile=True
    trace_events: int = 0
    monitor_ticks: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def events_per_s(self) -> float:
        """Scheduled sim-events per host second (coarse, profile-free)."""
        if not self.wall_ns:
            return 0.0
        return self.scheduled_events / (self.wall_ns / 1e9)

    def fingerprint(self) -> dict:
        """Seed-deterministic digest: identical across profiler on/off.

        Everything here is a pure function of (scenario, scale, seed) —
        no host-time fields.
        """
        return {
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "ops": self.ops,
            "errors": self.errors,
            "sim_ms": round(self.sim_ms, 6),
            "scheduled_events": self.scheduled_events,
            "registry_digest": self.registry_digest,
        }


def _make_clients(scenario: str, deployment, root, metrics: Metrics, n: int):
    """Closed-loop clients for *scenario* against a booted deployment."""
    sim = deployment.sim
    setup_client = deployment.add_client("setup")
    holder: dict[str, Any] = {}

    def setup():
        holder["target"] = yield from setup_client.create_dir()
        yield from setup_client.append_row(root, "hot-name", (holder["target"],))

    deployment.cluster.run_process(setup())
    target = holder["target"]

    clients = []
    for i in range(n):
        directory_client = deployment.add_client(f"load{i}")

        if scenario == "lookup":

            def iteration(_n, c=directory_client):
                yield from lookup_once(c, root, "hot-name")

        elif scenario == "update":

            def iteration(n_, c=directory_client, tag=i):
                yield from append_delete_once(c, root, f"w{tag}-{n_}", target)

        elif scenario == "mixed":

            def iteration(n_, c=directory_client, tag=i):
                if n_ % MIXED_UPDATE_EVERY == 0:
                    yield from append_delete_once(c, root, f"m{tag}-{n_}", target)
                else:
                    yield from lookup_once(c, root, "hot-name")

        else:
            raise ValueError(
                f"unknown scenario {scenario!r}; pick from {SCENARIOS}"
            )
        clients.append(ClosedLoopClient(sim, f"load{i}", iteration, metrics, "op"))
    return clients


def _registry_digest(sim) -> str:
    snapshot = sim.obs.registry.snapshot()
    payload = json.dumps(snapshot, sort_keys=True, default=repr)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_perf_scenario(
    scenario: str,
    scale: str = "small",
    seed: int = 0,
    impl: str = "group",
    trace: bool = False,
    monitor: bool = False,
    profile: bool = True,
    sample: int = 1,
    keep_slices: bool = False,
) -> PerfRun:
    """Run one canonical scenario and measure host cost.

    With ``profile=True`` the whole run (cluster boot included) happens
    inside a :func:`repro.obs.hostprof.capture` block and the result's
    ``capture`` carries full attribution. With ``profile=False`` only
    endpoint counters and wallclock are read — that is the
    configuration ``bench_sim.py`` times, so the published sim-events/s
    numbers carry no per-event profiling overhead.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick from {sorted(SCALES)}")
    params = SCALES[scale]

    def body():
        deployment = build_deployment(impl, seed=seed)
        sim = deployment.sim
        if trace:
            sim.obs.tracer.enable(capacity=4096)
        mon = None
        if monitor:
            from repro.obs.monitor import HealthMonitor

            mon = HealthMonitor(sim).start()
        metrics = Metrics()
        clients = _make_clients(
            scenario, deployment, deployment.root, metrics, int(params["clients"])
        )
        run_closed_loop(
            sim, clients, params["warmup_ms"], params["measure_ms"]
        )
        return deployment, sim, mon, clients

    if profile:
        with hostprof.capture(sample=sample, keep_slices=keep_slices) as cap:
            deployment, sim, mon, clients = body()
        wall_ns = cap.wall_ns
    else:
        cap = None
        t0 = perf_counter_ns()
        deployment, sim, mon, clients = body()
        wall_ns = perf_counter_ns() - t0

    return PerfRun(
        scenario=scenario,
        scale=scale,
        seed=seed,
        ops=sum(c.iterations for c in clients),
        errors=sum(c.errors for c in clients),
        sim_ms=sim.now,
        scheduled_events=sim._sequence,
        wall_ns=wall_ns,
        trace_enabled=trace,
        monitor_enabled=monitor,
        registry_digest=_registry_digest(sim),
        capture=cap,
        trace_events=len(sim.obs.tracer.events()) if trace else 0,
        monitor_ticks=mon.ticks if mon is not None else 0,
    )
