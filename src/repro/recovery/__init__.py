"""Automated remediation: the detect-isolate-recover loop.

:mod:`repro.obs.monitor` detects (six hysteresis alert signals);
:class:`RemediationController` isolates and recovers — restarting
crashed replicas in place, evicting members stuck behind lossy links
onto spares, and scaling the group's resilience degree under sustained
retransmission pressure. See :mod:`repro.recovery.controller`.
"""

from repro.recovery.controller import RemediationController, RemediationPolicy

__all__ = ["RemediationController", "RemediationPolicy"]
