"""The remediation controller: closing the detect-isolate-recover loop.

The health monitor (PR 5) gave the simulation eyes — six hysteresis
alert signals derived from the metrics registry — and this module
gives it hands. A :class:`RemediationController` subscribes to the
monitor's alert stream and executes four policies against the
cluster's elastic-membership API:

* **restart in place** — a replica whose machine is down (its
  heartbeat-staleness alert is active and its server process is dead)
  is rebooted; the reboot re-runs the Fig. 6 recovery protocol and the
  replica rejoins the group;
* **evict + re-replicate** — a replica that is alive but unreachable
  behind a persistently lossy link (staleness alert active beyond the
  policy window while the process still runs) is decommissioned: the
  sequencer excludes it from the view, the monitor retires the node,
  and a spare from the configured pool boots in its place;
* **scale resilience** — sustained gap-repair retransmissions
  (``group.retrans_rate``) raise the group's resilience degree one
  step as an ordered group operation; once the network has been quiet
  for a policy window the controller scales back to the declared
  degree, so ``check_resilience_restored`` holds at the end of a run;
* **scrub, then evict** — a ``storage.corrupt_rate`` alert (the node
  is the damaged disk or NVRAM board) kicks an immediate scrub pass
  on the owning server; if the alert stays active past the policy
  window — the medium keeps producing rot faster than it can be
  repaired — the replica is evicted and re-replicated from the spare
  pool like a persistently unreachable one.

Every action is rate-limited (per-run budgets), cooled down (per node
or per policy), and audited: each one appends to
:attr:`RemediationController.actions`, bumps the ``remediate.actions``
counter, and — when the flight recorder is on — lands a
``remediate.<action>`` trace event stamped with the lineage
``("remediate", action, n)``, so a post-mortem can replay exactly what
the controller did and why. Reactions run either inside the monitor
tick (listener bookkeeping) or inside the controller's own fixed-
cadence process, so same-seed runs remediate identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Alert signal that drives the membership policies (a member that
#: neither sees nor sends heartbeats is crashed or unreachable).
STALENESS = "group.heartbeat_staleness"
#: Alert signal that drives the resilience-scaling policy.
RETRANS = "group.retrans_rate"
#: Alert signal that drives the scrub/evict corruption policy. Its
#: node is the damaged *storage device* (disk or NVRAM board), not a
#: server address — the controller maps it back to the owning site.
CORRUPTION = "storage.corrupt_rate"
#: Alert signal that accelerates the resilience scale-back policy: a
#: saturated sequencer (docs/OBSERVABILITY.md §10) means every extra
#: resilience degree is costing throughput the group does not have, so
#: once retransmission pressure is gone the controller returns to the
#: declared degree after the (short) scale window instead of waiting
#: out the full quiet window.
SATURATION = "group.seq_utilization"


@dataclass(frozen=True)
class RemediationPolicy:
    """Tunables of the three remediation policies."""

    #: Evaluation cadence; None inherits the monitor's interval.
    interval_ms: float | None = None

    # -- restart in place --
    #: Minimum gap between restarts of the same node.
    restart_cooldown_ms: float = 6_000.0
    #: Total restarts allowed per run.
    max_restarts: int = 4

    # -- evict + re-replicate --
    #: How long a live node's staleness alert must stay continuously
    #: active before eviction (a crashed node is restarted instead).
    evict_after_ms: float = 2_500.0
    #: Minimum gap between evictions.
    evict_cooldown_ms: float = 10_000.0
    #: Total evictions allowed per run (bounded by the spare pool).
    max_evictions: int = 2

    # -- resilience scaling --
    #: How long retransmission pressure must stay continuously active
    #: before the degree is raised one step.
    scale_after_ms: float = 1_500.0
    #: Minimum gap between degree changes (either direction).
    scale_cooldown_ms: float = 6_000.0
    #: Total scale-ups allowed per run.
    max_scale_ups: int = 3
    #: How long every retransmission alert must stay clear before the
    #: degree returns to the declared value.
    scale_back_after_quiet_ms: float = 5_000.0

    # -- corruption (scrub, then evict) --
    #: Minimum gap between scrub-now kicks of the same node.
    scrub_cooldown_ms: float = 4_000.0
    #: Total scrub-now kicks allowed per run.
    max_scrubs: int = 8
    #: How long a node's corruption alert must stay continuously
    #: active (scrubbing evidently not winning) before the replica is
    #: evicted and re-replicated from the spare pool.
    corrupt_evict_after_ms: float = 6_000.0


class RemediationController:
    """Subscribe to HealthMonitor alerts; drive the cluster back to
    its declared shape."""

    def __init__(self, cluster, monitor, policy: RemediationPolicy | None = None):
        self.cluster = cluster
        self.monitor = monitor
        self.policy = policy or RemediationPolicy()
        self.sim = cluster.sim
        #: Audit trail: one dict per action, in execution order.
        self.actions: list[dict] = []
        self._active_since: dict[tuple, float] = {}  # (node, signal) -> t
        self._restarted_at: dict[str, float] = {}
        self._last_evict_at: float | None = None
        self._last_scale_at: float | None = None
        self._retrans_quiet_since: float | None = None
        self._scrubbed_at: dict[str, float] = {}
        self._restarts = 0
        self._evictions = 0
        self._scrubs = 0
        self._scale_ups = 0
        self._scaling = False
        self._action_no = 0
        self._process = None
        self._c_actions = self.sim.obs.registry.counter(
            "remediation", "remediate.actions"
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "RemediationController":
        """Attach to the monitor and start the policy loop."""
        self.monitor.subscribe(self._on_event)
        for alert in self.monitor.active_alerts:
            self._active_since.setdefault((alert.node, alert.signal), alert.at_ms)
        self._retrans_quiet_since = self.sim.now
        interval = (
            self.policy.interval_ms
            if self.policy.interval_ms is not None
            else self.monitor.interval_ms
        )
        self._process = self.sim.spawn(self._run(interval), "remediation-ctl")
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill("remediation controller stopped")
            self._process = None

    def _run(self, interval_ms: float):
        while True:
            yield self.sim.sleep(interval_ms)
            self.tick()

    def _on_event(self, alert) -> None:
        """Monitor listener: track when each alert went (in)active."""
        key = (alert.node, alert.signal)
        if alert.kind == "alert":
            self._active_since.setdefault(key, alert.at_ms)
        else:
            self._active_since.pop(key, None)

    # -- the policy loop ---------------------------------------------------

    def tick(self) -> None:
        now = self.sim.now
        self._membership_policies(now)
        self._scale_policy(now)
        self._corruption_policy(now)

    def _membership_policies(self, now: float) -> None:
        for address in list(self.cluster.config.server_addresses):
            node = str(address)
            since = self._active_since.get((node, STALENESS))
            if since is None:
                continue
            site = self.cluster.site_of(address)
            if site is None:
                continue
            server = site.server
            if server is None or not server.alive:
                self._maybe_restart(site, node, now)
            elif now - since >= self.policy.evict_after_ms:
                self._maybe_evict(site, node, now, since)

    def _maybe_restart(self, site, node: str, now: float) -> None:
        if self._restarts >= self.policy.max_restarts:
            return
        last = self._restarted_at.get(node)
        if last is not None and now - last < self.policy.restart_cooldown_ms:
            return
        self._restarts += 1
        self._restarted_at[node] = now
        index = self.cluster.sites.index(site)
        self.cluster.restart_server(index)
        self._audit("restart", node, server=index)

    def _maybe_evict(self, site, node: str, now: float, since: float) -> None:
        self._evict_and_replace(site, node, now, stale_ms=round(now - since, 3))

    def _evict_and_replace(self, site, node: str, now: float, **detail) -> bool:
        """Shared evict + re-replicate mechanics (budget, cooldown,
        spare pool, majority guard); *node* is the alerting registry
        node the monitor should retire."""
        if self._evictions >= self.policy.max_evictions:
            return False
        if (
            self._last_evict_at is not None
            and now - self._last_evict_at < self.policy.evict_cooldown_ms
        ):
            return False
        if not self.cluster.has_spare():
            return False
        # Never evict into a minority: the OTHER operational replicas
        # must form a majority of the shrunk server set by themselves.
        others = [
            s
            for s in self.cluster.operational_servers()
            if s.me != site.dir_address
        ]
        remaining = len(self.cluster.config.server_addresses) - 1
        if len(others) < remaining // 2 + 1:
            return False
        self._evictions += 1
        self._last_evict_at = now
        index = self.cluster.sites.index(site)
        self.cluster.evict_server(index)
        self.monitor.retire_node(node)
        self._audit("evict", node, server=index, **detail)
        replacement = self.cluster.add_server()
        self._audit(
            "add",
            str(replacement.me),
            server=self.cluster.sites.index(self.cluster.site_of(replacement.me)),
        )
        return True

    # -- corruption: scrub now, evict if it persists ------------------------

    def _corruption_policy(self, now: float) -> None:
        for (node, signal), since in sorted(self._active_since.items()):
            if signal != CORRUPTION:
                continue
            site = self._site_of_storage(node)
            if site is None:
                continue  # e.g. an already-evicted replica's old disk
            server = site.server
            if (
                now - since >= self.policy.corrupt_evict_after_ms
                and server is not None
            ):
                # Scrubbing is evidently not winning (rot keeps being
                # found, or keeps being served): replace the replica.
                if self._evict_and_replace(
                    site, node, now, corrupt_ms=round(now - since, 3)
                ):
                    continue
            self._maybe_scrub(site, node, now)

    def _site_of_storage(self, node: str):
        """The site owning the storage device registered as *node*."""
        for site in self.cluster.sites:
            if site.disk.name == node:
                return site
            nvram = getattr(site, "nvram", None)
            if nvram is not None and nvram.name == node:
                return site
        return None

    def _maybe_scrub(self, site, node: str, now: float) -> None:
        if self._scrubs >= self.policy.max_scrubs:
            return
        last = self._scrubbed_at.get(node)
        if last is not None and now - last < self.policy.scrub_cooldown_ms:
            return
        server = site.server
        if server is None or not server.alive or not server.operational:
            return  # a dead replica is the restart policy's problem
        if not hasattr(server, "scrub_now"):
            return
        self._scrubs += 1
        self._scrubbed_at[node] = now
        server.scrub_now()
        self._audit(
            "scrub", node, server=self.cluster.sites.index(site)
        )

    def _scale_policy(self, now: float) -> None:
        active = [
            t
            for (_node, signal), t in self._active_since.items()
            if signal == RETRANS
        ]
        cfg = self.cluster.config
        declared = self.cluster.declared_resilience
        cooled = (
            self._last_scale_at is None
            or now - self._last_scale_at >= self.policy.scale_cooldown_ms
        )
        if active:
            self._retrans_quiet_since = None
            ceiling = cfg.n_servers - 1
            if (
                now - min(active) >= self.policy.scale_after_ms
                and cfg.resilience < ceiling
                and not self._scaling
                and self._scale_ups < self.policy.max_scale_ups
                and cooled
            ):
                self._scale_ups += 1
                self._last_scale_at = now
                self._launch_scale(cfg.resilience + 1, "scale_up")
        else:
            if self._retrans_quiet_since is None:
                self._retrans_quiet_since = now
                return
            # A saturated sequencer makes the raised degree actively
            # harmful (each message costs more ordering work the group
            # has no headroom for): shorten the quiet window to the
            # scale-up trigger window instead of the full cool-off.
            saturated = any(
                signal == SATURATION for (_node, signal) in self._active_since
            )
            needed = (
                self.policy.scale_after_ms
                if saturated
                else self.policy.scale_back_after_quiet_ms
            )
            if (
                cfg.resilience > declared
                and not self._scaling
                and now - self._retrans_quiet_since >= needed
                and cooled
            ):
                self._last_scale_at = now
                self._launch_scale(declared, "scale_back")

    def _launch_scale(self, degree: int, action: str) -> None:
        """Run the ordered resilience change in its own process (it
        blocks on the group, which a tick callback cannot)."""
        self._scaling = True

        def run():
            try:
                for server in self.cluster.operational_servers():
                    try:
                        seqno = yield from server.change_resilience(degree)
                    except ReproError:
                        continue
                    self._audit(
                        action, str(server.me), resilience=degree, seqno=seqno
                    )
                    return
                self._audit(action + "_failed", "cluster", resilience=degree)
            finally:
                self._scaling = False

        self.sim.spawn(run(), f"remediate.{action}")

    # -- audit -------------------------------------------------------------

    def _audit(self, action: str, node: str, **detail) -> None:
        self._action_no += 1
        entry = {
            "at_ms": round(self.sim.now, 3),
            "action": action,
            "node": node,
            "n": self._action_no,
            **detail,
        }
        self.actions.append(entry)
        self._c_actions.inc()
        self.sim.obs.emit(
            node,
            "remediate",
            f"remediate.{action}",
            lineage=("remediate", action, self._action_no),
            **detail,
        )

    def summary(self) -> dict:
        """JSON-safe digest (the chaos verdict embeds this)."""
        return {
            "actions": list(self.actions),
            "restarts": self._restarts,
            "evictions": self._evictions,
            "scrubs": self._scrubs,
            "scale_ups": self._scale_ups,
        }
