"""Timed fault schedules.

Events are dataclasses naming a simulated time and a target; a
:class:`FaultPlan` arms them all against a cluster (any of the cluster
classes in :mod:`repro.cluster` that expose ``crash_server`` /
``restart_server`` / ``partition_network`` / ``heal_network``).

The plan records what it did and when, so tests can correlate observed
client anomalies with injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one scheduled fault."""

    at_ms: float

    def apply(self, cluster) -> str:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class Crash(FaultEvent):
    """Fail-stop crash of one directory server."""

    server: int = 0

    def apply(self, cluster) -> str:
        cluster.crash_server(self.server)
        return f"crash server {self.server}"


@dataclass(frozen=True)
class Restart(FaultEvent):
    """Reboot a crashed directory server (it re-runs recovery)."""

    server: int = 0

    def apply(self, cluster) -> str:
        cluster.restart_server(self.server)
        return f"restart server {self.server}"


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Split the network into server-index groups (clients ride with
    the first group)."""

    groups: tuple = ((0, 1), (2,))

    def apply(self, cluster) -> str:
        cluster.partition_network(*[list(g) for g in self.groups])
        return f"partition {self.groups}"


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Repair all partitions."""

    def apply(self, cluster) -> str:
        cluster.heal_network()
        return "heal network"


@dataclass(frozen=True)
class DiskFailure(FaultEvent):
    """Head crash of one site's disk (data irrecoverably lost)."""

    site: int = 0

    def apply(self, cluster) -> str:
        cluster.sites[self.site].disk.fail()
        return f"disk failure at site {self.site}"


#: Deprecated alias (pre-1.0 name); use :class:`DiskFailure`.
DiskFailure_ = DiskFailure


@dataclass(frozen=True)
class InstallLinkPolicy(FaultEvent):
    """Insert a :class:`~repro.net.policy.LinkPolicy` into the
    network's interceptor chain (adversarial message faults)."""

    policy: Any = None

    def apply(self, cluster) -> str:
        cluster.network.add_policy(self.policy)
        return f"install link policy {self.policy.name!r}"


@dataclass(frozen=True)
class RemoveLinkPolicy(FaultEvent):
    """Remove a link policy (by name or instance) from the chain."""

    policy: Any = None

    def apply(self, cluster) -> str:
        cluster.network.remove_policy(self.policy)
        name = getattr(self.policy, "name", self.policy)
        return f"remove link policy {name!r}"


@dataclass(frozen=True)
class Intervention(FaultEvent):
    """A dynamic fault: *fn(cluster)* runs at fire time and may inspect
    live protocol state (e.g. crash whichever server is currently the
    sequencer). *fn* returns the log description, or None to use
    *label*. The nemesis scenarios are built from these."""

    label: str = "intervention"
    fn: Any = None

    def apply(self, cluster) -> str:
        result = self.fn(cluster)
        return result if isinstance(result, str) else self.label


@dataclass
class FaultPlan:
    """A schedule of fault events plus an execution log."""

    events: list = field(default_factory=list)
    log: list = field(default_factory=list)  # (time, description)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def crash(self, at_ms: float, server: int) -> "FaultPlan":
        return self.add(Crash(at_ms, server))

    def restart(self, at_ms: float, server: int) -> "FaultPlan":
        return self.add(Restart(at_ms, server))

    def partition(self, at_ms: float, *groups) -> "FaultPlan":
        return self.add(Partition(at_ms, tuple(tuple(g) for g in groups)))

    def heal(self, at_ms: float) -> "FaultPlan":
        return self.add(Heal(at_ms))

    def disk_failure(self, at_ms: float, site: int) -> "FaultPlan":
        return self.add(DiskFailure(at_ms, site))

    def install_policy(self, at_ms: float, policy) -> "FaultPlan":
        return self.add(InstallLinkPolicy(at_ms, policy))

    def remove_policy(self, at_ms: float, policy) -> "FaultPlan":
        return self.add(RemoveLinkPolicy(at_ms, policy))

    def intervene(self, at_ms: float, label: str, fn) -> "FaultPlan":
        return self.add(Intervention(at_ms, label, fn))

    def arm(self, cluster) -> None:
        """Schedule every event on the cluster's simulator clock.

        Times are absolute simulated ms; events already in the past
        are rejected (arm the plan before running the window).
        """
        sim = cluster.sim
        for event in sorted(self.events, key=lambda e: e.at_ms):
            delay = event.at_ms - sim.now
            if delay < 0:
                raise SimulationError(
                    f"fault at t={event.at_ms} is in the past (now={sim.now})"
                )
            sim.schedule(delay, lambda e=event: self._fire(cluster, e))

    def _fire(self, cluster, event: FaultEvent) -> None:
        description = event.apply(cluster)
        self.log.append((cluster.sim.now, description))
        cluster.sim.log(f"fault: {description}")

    @property
    def fired(self) -> int:
        return len(self.log)


class RandomFaultPlan(FaultPlan):
    """A seeded random crash/restart/partition schedule.

    Invariants by construction:

    * at most ``max_down`` servers are down simultaneously (keeps the
      scenario recoverable — with 3 servers and ``max_down=1`` a
      majority always exists);
    * every crash is followed by a restart after a random dwell;
    * partitions always heal.
    """

    def __init__(
        self,
        rng,
        n_servers: int,
        window_ms: tuple[float, float],
        events: int = 6,
        max_down: int = 1,
        min_gap_ms: float = 2_500.0,
    ):
        super().__init__()
        start, end = window_ms
        down: set[int] = set()
        partitioned = False
        t = start
        for _ in range(events):
            t += rng.uniform(min_gap_ms, min_gap_ms * 2.5)
            if t >= end:
                break
            choices = []
            if len(down) < max_down and not partitioned:
                choices.append("crash")
            if down:
                choices.append("restart")
            if not partitioned and not down and n_servers >= 3:
                choices.append("partition")
            if partitioned:
                choices.append("heal")
            if not choices:
                continue
            kind = rng.choice(choices)
            if kind == "crash":
                target = rng.choice([i for i in range(n_servers) if i not in down])
                self.crash(t, target)
                down.add(target)
            elif kind == "restart":
                target = rng.choice(sorted(down))
                self.restart(t, target)
                down.discard(target)
            elif kind == "partition":
                isolated = rng.randrange(n_servers)
                rest = [i for i in range(n_servers) if i != isolated]
                self.partition(t, rest, [isolated])
                partitioned = True
            elif kind == "heal":
                self.heal(t)
                partitioned = False
        # Leave the world repaired at the end of the window.
        tail = max(t, end) + min_gap_ms
        if partitioned:
            self.heal(tail)
            tail += min_gap_ms
        for target in sorted(down):
            self.restart(tail, target)
            tail += min_gap_ms
