"""Timed fault schedules.

Events are dataclasses naming a simulated time and a target; a
:class:`FaultPlan` arms them all against a cluster (any of the cluster
classes in :mod:`repro.cluster` that expose ``crash_server`` /
``restart_server`` / ``partition_network`` / ``heal_network``).

The plan records what it did and when, so tests can correlate observed
client anomalies with injected faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


@dataclass(frozen=True)
class FaultEvent:
    """Base class: one scheduled fault."""

    at_ms: float

    def apply(self, cluster) -> str:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class Crash(FaultEvent):
    """Fail-stop crash of one directory server."""

    server: int = 0

    def apply(self, cluster) -> str:
        cluster.crash_server(self.server)
        return f"crash server {self.server}"


@dataclass(frozen=True)
class Restart(FaultEvent):
    """Reboot a crashed directory server (it re-runs recovery)."""

    server: int = 0

    def apply(self, cluster) -> str:
        cluster.restart_server(self.server)
        return f"restart server {self.server}"


@dataclass(frozen=True)
class Partition(FaultEvent):
    """Split the network into server-index groups (clients ride with
    the first group)."""

    groups: tuple = ((0, 1), (2,))

    def apply(self, cluster) -> str:
        cluster.partition_network(*[list(g) for g in self.groups])
        return f"partition {self.groups}"


@dataclass(frozen=True)
class Heal(FaultEvent):
    """Repair all partitions."""

    def apply(self, cluster) -> str:
        cluster.heal_network()
        return "heal network"


@dataclass(frozen=True)
class DiskFailure(FaultEvent):
    """Head crash of one site's disk (data irrecoverably lost)."""

    site: int = 0

    def apply(self, cluster) -> str:
        cluster.sites[self.site].disk.fail()
        return f"disk failure at site {self.site}"


@dataclass(frozen=True)
class BitRot(FaultEvent):
    """Rot stored blocks on one site's disk (seeded, self-describing).

    *area* narrows the target: ``"admin"`` hits the directory service's
    admin partition, ``"any"`` any written block. The damaged indexes
    are chosen with the cluster RNG stream ``fault.bitrot.<site>``.
    """

    site: int = 0
    blocks: int = 1
    area: str = "any"

    def apply(self, cluster) -> str:
        site = cluster.sites[self.site]
        region = site.partition.region if self.area == "admin" else None
        rng = cluster.sim.rng.stream(f"fault.bitrot.{self.site}")
        hit = site.disk.inject_bit_rot(rng, self.blocks, region=region)
        return f"bit rot at site {self.site}: blocks {hit}"


@dataclass(frozen=True)
class ExtentRot(FaultEvent):
    """Rot stored extents (Bullet files) on one site's disk."""

    site: int = 0
    extents: int = 1

    def apply(self, cluster) -> str:
        site = cluster.sites[self.site]
        rng = cluster.sim.rng.stream(f"fault.extentrot.{self.site}")
        hit = site.disk.corrupt_extent(rng, self.extents)
        return f"extent rot at site {self.site}: {len(hit)} extent(s)"


@dataclass(frozen=True)
class TornWrite(FaultEvent):
    """Arm a torn write: the next multi-block admin flush on the site
    persists only its first *keep_blocks* blocks but reports success."""

    site: int = 0
    keep_blocks: int = 1

    def apply(self, cluster) -> str:
        site = cluster.sites[self.site]
        site.disk.arm_torn_write(self.keep_blocks, region=site.partition.region)
        return f"armed torn write at site {self.site} (keep {self.keep_blocks})"


@dataclass(frozen=True)
class LostWrites(FaultEvent):
    """Arm lost writes: the next *count* single-block writes into the
    site's admin partition report success without persisting anything."""

    site: int = 0
    count: int = 1

    def apply(self, cluster) -> str:
        site = cluster.sites[self.site]
        site.disk.arm_lost_writes(self.count, region=site.partition.region)
        return f"armed {self.count} lost write(s) at site {self.site}"


@dataclass(frozen=True)
class MisdirectedWrites(FaultEvent):
    """Arm misdirected writes: the next *count* single-block writes into
    the site's admin partition land one block away from their target."""

    site: int = 0
    count: int = 1

    def apply(self, cluster) -> str:
        site = cluster.sites[self.site]
        site.disk.arm_misdirected_writes(
            self.count, region=site.partition.region
        )
        return f"armed {self.count} misdirected write(s) at site {self.site}"


@dataclass(frozen=True)
class NvramBlip(FaultEvent):
    """Battery blip: corrupt the newest *records* records on the site's
    NVRAM board (no-op on sites without one)."""

    site: int = 0
    records: int = 1

    def apply(self, cluster) -> str:
        nvram = getattr(cluster.sites[self.site], "nvram", None)
        if nvram is None:
            return f"nvram blip at site {self.site}: no board (no-op)"
        hit = nvram.blip(self.records)
        return f"nvram blip at site {self.site}: corrupted {hit} record(s)"


@dataclass(frozen=True)
class CrashPoint(FaultEvent):
    """Power-cut the site inside its next admin-partition flush.

    *cut_after* blocks of the flush persist, then the whole machine
    dies (``crash_server``) before the server can update its RAM
    mirrors — the restarted server must reconcile the torn intention
    from disk alone (the paper's Fig. 5/6 recovery argument, exercised
    mid-write).
    """

    site: int = 0
    cut_after: int = 1

    def apply(self, cluster) -> str:
        site_index = self.site
        site = cluster.sites[site_index]
        site.disk.arm_crash_point(
            lambda: cluster.crash_server(site_index),
            cut_after=self.cut_after,
            region=site.partition.region,
        )
        return (
            f"armed crash point at site {site_index} "
            f"(power cut after {self.cut_after} block(s))"
        )


@dataclass(frozen=True)
class InstallLinkPolicy(FaultEvent):
    """Insert a :class:`~repro.net.policy.LinkPolicy` into the
    network's interceptor chain (adversarial message faults)."""

    policy: Any = None

    def apply(self, cluster) -> str:
        cluster.network.add_policy(self.policy)
        return f"install link policy {self.policy.name!r}"


@dataclass(frozen=True)
class RemoveLinkPolicy(FaultEvent):
    """Remove a link policy (by name or instance) from the chain."""

    policy: Any = None

    def apply(self, cluster) -> str:
        cluster.network.remove_policy(self.policy)
        name = getattr(self.policy, "name", self.policy)
        return f"remove link policy {name!r}"


@dataclass(frozen=True)
class Intervention(FaultEvent):
    """A dynamic fault: *fn(cluster)* runs at fire time and may inspect
    live protocol state (e.g. crash whichever server is currently the
    sequencer). *fn* returns the log description, or None to use
    *label*. The nemesis scenarios are built from these."""

    label: str = "intervention"
    fn: Any = None

    def apply(self, cluster) -> str:
        result = self.fn(cluster)
        return result if isinstance(result, str) else self.label


@dataclass
class FaultPlan:
    """A schedule of fault events plus an execution log."""

    events: list = field(default_factory=list)
    log: list = field(default_factory=list)  # (time, description)

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def crash(self, at_ms: float, server: int) -> "FaultPlan":
        return self.add(Crash(at_ms, server))

    def restart(self, at_ms: float, server: int) -> "FaultPlan":
        return self.add(Restart(at_ms, server))

    def partition(self, at_ms: float, *groups) -> "FaultPlan":
        return self.add(Partition(at_ms, tuple(tuple(g) for g in groups)))

    def heal(self, at_ms: float) -> "FaultPlan":
        return self.add(Heal(at_ms))

    def disk_failure(self, at_ms: float, site: int) -> "FaultPlan":
        return self.add(DiskFailure(at_ms, site))

    def bit_rot(self, at_ms: float, site: int, blocks: int = 1,
                area: str = "any") -> "FaultPlan":
        return self.add(BitRot(at_ms, site, blocks, area))

    def extent_rot(self, at_ms: float, site: int, extents: int = 1) -> "FaultPlan":
        return self.add(ExtentRot(at_ms, site, extents))

    def torn_write(self, at_ms: float, site: int, keep_blocks: int = 1) -> "FaultPlan":
        return self.add(TornWrite(at_ms, site, keep_blocks))

    def lost_writes(self, at_ms: float, site: int, count: int = 1) -> "FaultPlan":
        return self.add(LostWrites(at_ms, site, count))

    def misdirected_writes(self, at_ms: float, site: int, count: int = 1) -> "FaultPlan":
        return self.add(MisdirectedWrites(at_ms, site, count))

    def nvram_blip(self, at_ms: float, site: int, records: int = 1) -> "FaultPlan":
        return self.add(NvramBlip(at_ms, site, records))

    def crash_point(self, at_ms: float, site: int, cut_after: int = 1) -> "FaultPlan":
        return self.add(CrashPoint(at_ms, site, cut_after))

    def install_policy(self, at_ms: float, policy) -> "FaultPlan":
        return self.add(InstallLinkPolicy(at_ms, policy))

    def remove_policy(self, at_ms: float, policy) -> "FaultPlan":
        return self.add(RemoveLinkPolicy(at_ms, policy))

    def intervene(self, at_ms: float, label: str, fn) -> "FaultPlan":
        return self.add(Intervention(at_ms, label, fn))

    def arm(self, cluster) -> None:
        """Schedule every event on the cluster's simulator clock.

        Times are absolute simulated ms; events already in the past
        are rejected (arm the plan before running the window).
        """
        sim = cluster.sim
        for event in sorted(self.events, key=lambda e: e.at_ms):
            delay = event.at_ms - sim.now
            if delay < 0:
                raise SimulationError(
                    f"fault at t={event.at_ms} is in the past (now={sim.now})"
                )
            sim.schedule(delay, lambda e=event: self._fire(cluster, e))

    def _fire(self, cluster, event: FaultEvent) -> None:
        description = event.apply(cluster)
        self.log.append((cluster.sim.now, description))
        cluster.sim.log(f"fault: {description}")

    @property
    def fired(self) -> int:
        return len(self.log)


class RandomFaultPlan(FaultPlan):
    """A seeded random crash/restart/partition schedule.

    Invariants by construction:

    * at most ``max_down`` servers are down simultaneously (keeps the
      scenario recoverable — with 3 servers and ``max_down=1`` a
      majority always exists);
    * every crash is followed by a restart after a random dwell;
    * partitions always heal.
    """

    def __init__(
        self,
        rng,
        n_servers: int,
        window_ms: tuple[float, float],
        events: int = 6,
        max_down: int = 1,
        min_gap_ms: float = 2_500.0,
    ):
        super().__init__()
        start, end = window_ms
        down: set[int] = set()
        partitioned = False
        t = start
        for _ in range(events):
            t += rng.uniform(min_gap_ms, min_gap_ms * 2.5)
            if t >= end:
                break
            choices = []
            if len(down) < max_down and not partitioned:
                choices.append("crash")
            if down:
                choices.append("restart")
            if not partitioned and not down and n_servers >= 3:
                choices.append("partition")
            if partitioned:
                choices.append("heal")
            if not choices:
                continue
            kind = rng.choice(choices)
            if kind == "crash":
                target = rng.choice([i for i in range(n_servers) if i not in down])
                self.crash(t, target)
                down.add(target)
            elif kind == "restart":
                target = rng.choice(sorted(down))
                self.restart(t, target)
                down.discard(target)
            elif kind == "partition":
                isolated = rng.randrange(n_servers)
                rest = [i for i in range(n_servers) if i != isolated]
                self.partition(t, rest, [isolated])
                partitioned = True
            elif kind == "heal":
                self.heal(t)
                partitioned = False
        # Leave the world repaired at the end of the window.
        tail = max(t, end) + min_gap_ms
        if partitioned:
            self.heal(tail)
            tail += min_gap_ms
        for target in sorted(down):
            self.restart(tail, target)
            tail += min_gap_ms
