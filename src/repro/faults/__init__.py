"""Composable fault injection for whole-cluster scenarios.

A :class:`~repro.faults.plan.FaultPlan` is a timed script of crash,
restart, partition, heal, disk-failure, and storage-corruption events
applied to a cluster — the tool behind the chaos tests and the recovery
benchmarks. :class:`~repro.faults.plan.RandomFaultPlan` generates seeded
random schedules for property-style soak testing. The storage-fault
catalogue (bit rot, torn/lost/misdirected writes, NVRAM blips, crash
points) is documented in docs/CHAOS.md.
"""

from repro.faults.plan import (
    BitRot,
    Crash,
    CrashPoint,
    DiskFailure,
    ExtentRot,
    FaultEvent,
    FaultPlan,
    Heal,
    InstallLinkPolicy,
    Intervention,
    LostWrites,
    MisdirectedWrites,
    NvramBlip,
    Partition,
    RandomFaultPlan,
    RemoveLinkPolicy,
    Restart,
    TornWrite,
)

__all__ = [
    "BitRot",
    "Crash",
    "CrashPoint",
    "DiskFailure",
    "ExtentRot",
    "FaultEvent",
    "FaultPlan",
    "Heal",
    "InstallLinkPolicy",
    "Intervention",
    "LostWrites",
    "MisdirectedWrites",
    "NvramBlip",
    "Partition",
    "RandomFaultPlan",
    "RemoveLinkPolicy",
    "Restart",
    "TornWrite",
]
