"""Composable fault injection for whole-cluster scenarios.

A :class:`~repro.faults.plan.FaultPlan` is a timed script of crash,
restart, partition, heal, and disk-failure events applied to a cluster
— the tool behind the chaos tests and the recovery benchmarks.
:class:`~repro.faults.plan.RandomFaultPlan` generates seeded random
schedules for property-style soak testing.
"""

from repro.faults.plan import (
    Crash,
    DiskFailure,
    DiskFailure_,
    FaultEvent,
    FaultPlan,
    Heal,
    InstallLinkPolicy,
    Intervention,
    Partition,
    RandomFaultPlan,
    RemoveLinkPolicy,
    Restart,
)

__all__ = [
    "Crash",
    "DiskFailure",
    "DiskFailure_",  # deprecated alias
    "FaultEvent",
    "FaultPlan",
    "Heal",
    "InstallLinkPolicy",
    "Intervention",
    "Partition",
    "RandomFaultPlan",
    "RemoveLinkPolicy",
    "Restart",
]
