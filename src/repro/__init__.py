"""repro — a reproduction of Kaashoek, Tanenbaum & Verstoep (ICDCS '93),
"Using Group Communication to Implement a Fault-Tolerant Directory
Service", as a complete simulated-Amoeba stack in Python.

Top-level convenience imports cover the public API most users need:
deployment builders, the client, capabilities, and the simulator. The
full map is in README.md; per-subsystem detail lives in the package
docstrings (`repro.group`, `repro.directory`, ...).
"""

from repro.amoeba import ALL_RIGHTS, Capability, Port, Rights, restrict
from repro.cluster import (
    GroupServiceCluster,
    NfsServiceCluster,
    NvramServiceCluster,
    ReplicatedBulletCluster,
    RpcServiceCluster,
)
from repro.directory import DirectoryClient
from repro.sim import LatencyModel, Simulator

__version__ = "1.0.0"

__all__ = [
    "ALL_RIGHTS",
    "Capability",
    "DirectoryClient",
    "GroupServiceCluster",
    "LatencyModel",
    "NfsServiceCluster",
    "NvramServiceCluster",
    "Port",
    "ReplicatedBulletCluster",
    "Rights",
    "RpcServiceCluster",
    "Simulator",
    "restrict",
    "__version__",
]
