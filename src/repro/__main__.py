"""Command-line entry point: regenerate the paper's results.

Usage::

    python -m repro fig7            # the latency table
    python -m repro fig8            # lookup throughput curves
    python -m repro fig9            # update throughput curves
    python -m repro all             # everything above
    python -m repro demo            # the narrated fault-tolerance tour
    python -m repro chaos --seeds 25   # adversarial chaos suite

Each command prints the measured numbers next to the paper's. For the
full experiment set (ablations included) run
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    fig7_table,
    format_fig7,
    format_throughput_curve,
    lookup_throughput,
    update_throughput,
)
from repro.bench.tables import shape_check_fig7


def cmd_fig7(args) -> int:
    table = fig7_table(iterations=args.iterations, seed=args.seed)
    print(format_fig7(table))
    problems = shape_check_fig7(table)
    if problems:
        print("\nSHAPE CLAIMS VIOLATED:")
        for problem in problems:
            print(" -", problem)
        return 1
    print("\nall of the paper's ordering/ratio claims reproduced.")
    return 0


def cmd_fig8(args) -> int:
    curves = {}
    for impl in ("group", "nvram", "rpc"):
        curves[impl] = {
            n: lookup_throughput(impl, n, seed=args.seed, measure_ms=6_000.0)
            for n in range(1, 8)
        }
    print(
        format_throughput_curve(
            "Fig. 8 — lookup throughput vs clients "
            "(paper saturation: group 652/s, RPC 520/s)",
            curves,
            "total lookups per second",
        )
    )
    return 0


def cmd_fig9(args) -> int:
    curves = {}
    for impl in ("group", "nvram", "rpc"):
        curves[impl] = {
            n: update_throughput(impl, n, seed=args.seed, measure_ms=15_000.0)
            for n in (1, 2, 3, 5, 7)
        }
    print(
        format_throughput_curve(
            "Fig. 9 — append-delete pairs/s vs clients "
            "(paper ceilings: NVRAM 45, group 5, RPC 5)",
            curves,
            "append-delete pairs per second",
        )
    )
    return 0


def cmd_all(args) -> int:
    status = cmd_fig7(args)
    print()
    cmd_fig8(args)
    print()
    cmd_fig9(args)
    return status


def cmd_chaos(args) -> int:
    from repro.chaos import SCENARIOS, format_verdicts, run_suite

    if args.list_scenarios:
        for scenario in SCENARIOS:
            tag = "" if scenario.in_rotation else "  [negative, not in rotation]"
            print(f"{scenario.name:<28}{scenario.description}{tag}")
        return 0
    known = {scenario.name for scenario in SCENARIOS}
    if args.scenario is not None and args.scenario not in known:
        print(f"error: unknown chaos scenario {args.scenario!r}")
        print(f"known scenarios: {', '.join(sorted(known))}")
        return 2
    verdicts = run_suite(
        args.seeds,
        base_seed=args.seed,
        smoke=args.smoke,
        only=args.scenario,
    )
    print(format_verdicts(verdicts))
    failures = [v for v in verdicts if not v.ok]
    if failures:
        print(f"\n{len(failures)} scenario run(s) FAILED:")
        for v in failures:
            for problem in v.problems[:5]:
                print(f" - seed {v.seed} {v.scenario}: {problem}")
        return 1
    print("\nall invariants held (replica equality + session guarantees).")
    return 0


def cmd_demo(args) -> int:
    import pathlib
    import runpy

    demo = pathlib.Path(__file__).resolve().parents[2] / "examples" / (
        "fault_tolerance_demo.py"
    )
    if demo.exists():
        runpy.run_path(str(demo), run_name="__main__")
        return 0
    print("examples/fault_tolerance_demo.py not found", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the ICDCS'93 fault-tolerant directory "
        "service results.",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--iterations", type=int, default=12, help="samples per Fig. 7 cell"
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=10,
        help="chaos: number of seeded scenario runs",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="chaos: shorter windows and fewer clients (CI smoke)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="chaos: run only this scenario instead of the rotation",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="chaos: list registered scenarios and exit",
    )
    parser.add_argument(
        "command",
        choices=["fig7", "fig8", "fig9", "all", "demo", "chaos"],
        help="which artifact to regenerate",
    )
    args = parser.parse_args(argv)
    handler = {
        "fig7": cmd_fig7,
        "fig8": cmd_fig8,
        "fig9": cmd_fig9,
        "all": cmd_all,
        "demo": cmd_demo,
        "chaos": cmd_chaos,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
