"""Command-line entry point: regenerate the paper's results.

Usage::

    python -m repro fig7            # the latency table
    python -m repro fig8            # lookup throughput curves
    python -m repro fig9            # update throughput curves
    python -m repro all             # everything above
    python -m repro demo            # the narrated fault-tolerance tour
    python -m repro chaos --seeds 25   # adversarial chaos suite
    python -m repro chaos --json       # ... machine-readable verdicts
    python -m repro trace update       # traced run + phase breakdown
    python -m repro profile update     # per-operation latency budget
    python -m repro perf mixed         # host-time budget (sim-events/s)
    python -m repro perf overhead      # obs on/off overhead accounting
    python -m repro capacity update    # bottleneck attribution report
    python -m repro capacity update --scale   # writer sweep + ceiling fit

Each command prints the measured numbers next to the paper's. For the
full experiment set (ablations included) run
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import (
    fig7_table,
    format_fig7,
    format_throughput_curve,
    lookup_throughput,
    update_throughput,
)
from repro.bench.tables import shape_check_fig7


def cmd_fig7(args) -> int:
    table = fig7_table(iterations=args.iterations, seed=args.seed)
    print(format_fig7(table))
    problems = shape_check_fig7(table)
    if problems:
        print("\nSHAPE CLAIMS VIOLATED:")
        for problem in problems:
            print(" -", problem)
        return 1
    print("\nall of the paper's ordering/ratio claims reproduced.")
    return 0


def cmd_fig8(args) -> int:
    curves = {}
    for impl in ("group", "nvram", "rpc"):
        curves[impl] = {
            n: lookup_throughput(impl, n, seed=args.seed, measure_ms=6_000.0)
            for n in range(1, 8)
        }
    print(
        format_throughput_curve(
            "Fig. 8 — lookup throughput vs clients "
            "(paper saturation: group 652/s, RPC 520/s)",
            curves,
            "total lookups per second",
        )
    )
    return 0


def cmd_fig9(args) -> int:
    curves = {}
    for impl in ("group", "nvram", "rpc"):
        curves[impl] = {
            n: update_throughput(impl, n, seed=args.seed, measure_ms=15_000.0)
            for n in (1, 2, 3, 5, 7)
        }
    print(
        format_throughput_curve(
            "Fig. 9 — append-delete pairs/s vs clients "
            "(paper ceilings: NVRAM 45, group 5, RPC 5)",
            curves,
            "append-delete pairs per second",
        )
    )
    return 0


def cmd_all(args) -> int:
    status = cmd_fig7(args)
    print()
    cmd_fig8(args)
    print()
    cmd_fig9(args)
    return status


def cmd_chaos(args) -> int:
    import json

    from repro.chaos import SCENARIOS, format_verdicts, host_summary, run_suite

    if args.list_scenarios:
        for scenario in SCENARIOS:
            tag = "" if scenario.in_rotation else "  [not in rotation]"
            print(f"{scenario.name:<28}{scenario.description}{tag}")
        return 0
    known = {scenario.name for scenario in SCENARIOS}
    if args.scenario is not None and args.scenario not in known:
        print(f"error: unknown chaos scenario {args.scenario!r}")
        print(f"known scenarios: {', '.join(sorted(known))}")
        return 2
    verdicts = run_suite(
        args.seeds,
        base_seed=args.seed,
        smoke=args.smoke,
        only=args.scenario,
        trace_dir=args.trace_dir,
    )
    failures = [v for v in verdicts if not v.ok]
    if args.json:
        print(
            json.dumps(
                {
                    "passed": len(verdicts) - len(failures),
                    "total": len(verdicts),
                    "host": host_summary(verdicts),
                    "verdicts": [v.as_dict() for v in verdicts],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if failures else 0
    print(format_verdicts(verdicts))
    if failures:
        print(f"\n{len(failures)} scenario run(s) FAILED:")
        for v in failures:
            for problem in v.problems[:5]:
                print(f" - seed {v.seed} {v.scenario}: {problem}")
            if v.trace_path:
                print(f"   flight recorder: {v.trace_path}")
        return 1
    print("\nall invariants held (replica equality + session guarantees).")
    return 0


def cmd_trace(args) -> int:
    import pathlib

    from repro.obs import breakdown
    from repro.obs.export import write_trace

    scenario = args.target or "update"
    if scenario not in breakdown.SCENARIOS:
        print(f"error: unknown trace scenario {scenario!r}")
        print(f"known scenarios: {', '.join(sorted(breakdown.SCENARIOS))}")
        return 2
    run = breakdown.record_update_trace(
        scenario, iterations=args.iterations, seed=args.seed
    )
    summary = breakdown.aggregate(run.breakdowns)
    print(breakdown.format_table(summary, run.scenario, run.impl))
    if run.dropped:
        print(f"(ring buffer dropped {run.dropped} early events)")

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{run.scenario}-seed{run.seed}"
    extensions = {"jsonl": ".jsonl", "chrome": ".trace.json", "text": ".txt"}
    formats = (
        ("jsonl", "chrome", "text") if args.format == "all" else (args.format,)
    )
    print()
    for fmt in formats:
        path = out_dir / (stem + extensions[fmt])
        write_trace(run.events, path, fmt)
        note = "  (open in https://ui.perfetto.dev)" if fmt == "chrome" else ""
        print(f"wrote {path}{note}")

    check = breakdown.check_against_benchmark(run)
    print(
        f"\nphase sums vs untraced benchmark: traced="
        f"{check['traced_ms']:.3f} ms, benchmark={check['benchmark_ms']:.3f} "
        f"ms, error={check['relative_error'] * 100:.2f}%"
    )
    if not check["ok"]:
        print("FAIL: phase decomposition drifted more than 5% from Fig. 7")
        return 1
    print("OK: the breakdown reproduces the Fig. 7 latency within 5%.")
    return 0


def cmd_profile(args) -> int:
    import json
    import pathlib

    from repro.obs import breakdown, spans
    from repro.obs.export import write_trace

    scenario = args.target or "update"
    if scenario not in breakdown.SCENARIOS:
        print(f"error: unknown profile scenario {scenario!r}")
        print(f"known scenarios: {', '.join(sorted(breakdown.SCENARIOS))}")
        return 2
    run = breakdown.record_update_trace(
        scenario, iterations=args.iterations, seed=args.seed
    )
    span_list = spans.stitch(run.events, run.windows)
    report = spans.budget(span_list, top=args.top)
    recon = spans.reconcile(span_list, run.breakdowns)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / f"{run.scenario}-seed{run.seed}-profile.trace.json"
    write_trace(
        run.events + spans.span_track_events(span_list), trace_path, "chrome"
    )

    if args.json:
        print(
            json.dumps(
                {
                    "scenario": run.scenario,
                    "impl": run.impl,
                    "seed": run.seed,
                    "iterations": run.iterations,
                    "events": len(run.events),
                    "report": report,
                    "reconciliation": recon,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(spans.format_report(report, run.scenario, run.impl))
        print()
        print(
            f"wrote {trace_path}  (open in https://ui.perfetto.dev — one "
            "track per operation under the 'profile' process)"
        )
        print(
            f"reconciliation vs Fig. 7 breakdown: max diff "
            f"{recon['max_abs_diff_ms']:.9f} ms over "
            f"{recon['phase_values_compared']} phase values"
        )
    if not recon["ok"]:
        if not args.json:
            print("FAIL: span segments disagree with the phase breakdown")
        return 1
    return 0


def cmd_capacity(args) -> int:
    import json
    import pathlib

    from repro.obs import capacity
    from repro.obs.export import write_trace

    scenario = args.target or "update"
    if scenario not in capacity.SCENARIOS:
        print(f"error: unknown capacity scenario {scenario!r}")
        print(f"known scenarios: {', '.join(sorted(capacity.SCENARIOS))}")
        return 2

    if args.scale is not None:
        # Writer sweep + ceiling prediction, checked against the
        # committed headline curve when one is available.
        counts = (1, 2, 4) if args.smoke else (1, 2, 4, 8)
        report = capacity.run_scale(
            scenario,
            seed=args.seed,
            writer_counts=counts,
            measure_ms=6_000.0 if args.smoke else 15_000.0,
            headline=capacity.load_headline(),
        )
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(capacity.format_scale(report))
        error = report.get("prediction_error")
        if error is not None and error > 0.15:
            if not args.json:
                print(
                    "FAIL: predicted ceiling off the committed plateau "
                    f"by {error * 100.0:.1f}% (> 15%)"
                )
            return 1
        return 0

    report = capacity.run_point(
        scenario,
        writers=args.writers,
        seed=args.seed,
        warmup_ms=1_000.0 if args.smoke else 2_000.0,
        measure_ms=4_000.0 if args.smoke else 10_000.0,
    )
    sampler_events = report.pop("sampler_events")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(capacity.format_point(report))
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = out_dir / (
        f"capacity-{scenario}-seed{report['seed']}.trace.json"
    )
    write_trace(sampler_events, trace_path, "chrome")
    print(
        f"\nwrote {trace_path}  (open in https://ui.perfetto.dev — "
        "per-resource utilization counter tracks)"
    )
    return 0


def cmd_perf(args) -> int:
    import json
    import pathlib

    from repro.bench import simbench
    from repro.obs import hostprof, overhead
    from repro.obs.export import write_trace

    scenario = args.target or "mixed"
    scale = args.scale or "small"
    if scale not in ("small", "medium", "large"):
        print(f"error: unknown perf scale {scale!r}")
        return 2

    if scenario == "overhead":
        result = overhead.account(
            "mixed", scale, seed=args.seed, repeats=2
        )
        result["micro"] = overhead.disabled_path_micro()
        if args.json:
            print(json.dumps(result, indent=2, sort_keys=True))
        else:
            print(overhead.format_account(result))
        return 0 if result["trace_is_passive"] else 1

    if scenario not in simbench.SCENARIOS:
        print(f"error: unknown perf scenario {scenario!r}")
        print(
            "known scenarios: "
            f"{', '.join(simbench.SCENARIOS)}, overhead"
        )
        return 2
    run = simbench.run_perf_scenario(
        scenario,
        scale=scale,
        seed=args.seed,
        sample=args.sample,
        keep_slices=args.perfetto,
    )
    report = run.capture.report(top=args.top)

    if args.perfetto:
        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        trace_path = out_dir / (
            f"perf-{scenario}-{scale}-seed{run.seed}.trace.json"
        )
        write_trace(run.capture.host_track_events(), trace_path, "chrome")

    if args.json:
        print(
            json.dumps(
                {
                    "fingerprint": run.fingerprint(),
                    "deterministic": hostprof.deterministic_digest(report),
                    "report": report,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        title = (
            f"host-time budget — scenario={scenario} scale={scale} "
            f"seed={run.seed} ({run.ops} ops, {run.sim_ms:.0f} sim-ms)"
        )
        print(hostprof.format_report(report, title))
        if args.perfetto:
            print(
                f"\nwrote {trace_path}  (open in https://ui.perfetto.dev — "
                "host-timeline spans, one track per component)"
            )
    # The attribution invariant is part of the command's contract.
    total = sum(
        row["host_ns"] for row in report["events"]["by_component"].values()
    )
    if total != report["host"]["exec_ns"]:
        print("FAIL: per-component host-ns do not sum to measured total")
        return 1
    return 0


def cmd_demo(args) -> int:
    import pathlib
    import runpy

    demo = pathlib.Path(__file__).resolve().parents[2] / "examples" / (
        "fault_tolerance_demo.py"
    )
    if demo.exists():
        runpy.run_path(str(demo), run_name="__main__")
        return 0
    print("examples/fault_tolerance_demo.py not found", file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the ICDCS'93 fault-tolerant directory "
        "service results.",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--iterations", type=int, default=12, help="samples per Fig. 7 cell"
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=10,
        help="chaos: number of seeded scenario runs",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="chaos: shorter windows and fewer clients (CI smoke)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="chaos: run only this scenario instead of the rotation",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="chaos: list registered scenarios and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="chaos: print structured verdicts as JSON",
    )
    parser.add_argument(
        "--trace-dir",
        default="chaos-traces",
        help="chaos: directory for failing seeds' flight-recorder dumps",
    )
    parser.add_argument(
        "--format",
        choices=["jsonl", "chrome", "text", "all"],
        default="all",
        help="trace: which exporter(s) to write",
    )
    parser.add_argument(
        "--out",
        default="traces",
        help="trace/profile: output directory for exported traces",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=3,
        help="profile/perf: how many slowest operations/sites to show",
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=1,
        help="perf: time every Nth event (count all); lowers overhead",
    )
    parser.add_argument(
        "--scale",
        nargs="?",
        const="sweep",
        default=None,
        help="perf: workload scale (small | medium | large, default "
        "small); capacity: bare --scale runs the writer sweep + "
        "ceiling prediction",
    )
    parser.add_argument(
        "--writers",
        type=int,
        default=4,
        help="capacity: closed-loop writer count for a single-point run",
    )
    parser.add_argument(
        "--perfetto",
        action="store_true",
        help="perf: write a host-timeline Chrome/Perfetto trace to --out",
    )
    parser.add_argument(
        "command",
        choices=[
            "fig7", "fig8", "fig9", "all", "demo", "chaos", "trace",
            "profile", "perf", "capacity",
        ],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="trace/profile/capacity: scenario to run "
        "(update | nvram-update | lookup); "
        "perf: lookup | update | mixed | overhead",
    )
    args = parser.parse_args(argv)
    handler = {
        "fig7": cmd_fig7,
        "fig8": cmd_fig8,
        "fig9": cmd_fig9,
        "all": cmd_all,
        "demo": cmd_demo,
        "chaos": cmd_chaos,
        "trace": cmd_trace,
        "profile": cmd_profile,
        "perf": cmd_perf,
        "capacity": cmd_capacity,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
