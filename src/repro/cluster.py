"""Deployment builders: whole simulated machine rooms in one call.

The paper's Fig. 3 organization for the group service: three directory
servers, three Bullet servers, and three disks, where directory server
*i* uses Bullet server *i* and both share disk *i*. This module builds
that (and the RPC / NVRAM / NFS deployments) on a simulated Ethernet,
and provides crash/restart/partition helpers for tests, examples, and
benchmarks.
"""

from __future__ import annotations


from repro.amoeba.capability import owner_capability
from repro.directory.admin import AdminPartition
from repro.directory.client import DirectoryClient
from repro.directory.config import ServiceConfig
from repro.directory.group_server import GroupDirectoryServer
from repro.directory.state import ROOT_OBJECT
from repro.errors import SimulationError
from repro.net.network import Network
from repro.rpc.client import RpcClient, RpcTimings
from repro.rpc.transport import Transport
from repro.sim.latency import LatencyModel
from repro.sim.scheduler import Simulator
from repro.storage.bullet import BulletServer
from repro.storage.disk import Disk, RawPartition

#: Disk layout: Bullet extents use the disk at large; the directory
#: server's raw partition sits at this block offset.
ADMIN_PARTITION_START = 2048
ADMIN_PARTITION_BLOCKS = 1024


class Site:
    """One replica site: directory machine + Bullet machine + disk."""

    def __init__(self, cluster: "BaseCluster", index: int):
        self.cluster = cluster
        self.index = index
        sim, network = cluster.sim, cluster.network
        self.dir_address = f"{cluster.name}.dir{index}"
        self.bullet_address = f"{cluster.name}.bullet{index}"
        self.disk = Disk(
            sim,
            f"{cluster.name}.disk{index}",
            latency=cluster.latency.disk,
            blocks=ADMIN_PARTITION_START + ADMIN_PARTITION_BLOCKS,
            integrity=getattr(cluster, "integrity", False),
        )
        self.dir_transport = Transport(sim, network.attach(self.dir_address))
        self.bullet_transport = Transport(sim, network.attach(self.bullet_address))
        self.bullet = BulletServer(
            self.bullet_transport, self.disk, f"{cluster.name}.{index}"
        )
        self.partition = RawPartition(
            self.disk, ADMIN_PARTITION_START, ADMIN_PARTITION_BLOCKS
        )
        self.server = None  # set by the cluster

    # -- failure injection --------------------------------------------------

    def crash_directory_server(self) -> None:
        """Fail-stop crash of the directory-server machine only."""
        if self.server is not None:
            self.server.crash()
        self.dir_transport.shutdown()

    def crash_bullet_server(self) -> None:
        """Fail-stop crash of the Bullet machine (files survive on disk)."""
        self.bullet.crash()
        self.bullet_transport.shutdown()

    def crash_site(self) -> None:
        """Crash both machines of the site (the disk keeps its data)."""
        self.crash_directory_server()
        self.crash_bullet_server()

    def restart_bullet_server(self) -> None:
        self.bullet_transport.restart()
        self.bullet = BulletServer(
            self.bullet_transport, self.disk, f"{self.cluster.name}.{self.index}"
        )


class BaseCluster:
    """Common scaffolding: simulator, network, client factory."""

    def __init__(
        self,
        name: str,
        seed: int = 0,
        latency: LatencyModel | None = None,
        sim: Simulator | None = None,
        network: Network | None = None,
        loss_probability: float = 0.0,
        link_policies=None,
    ):
        self.name = name
        self.sim = sim or Simulator(seed=seed)
        self.latency = latency or LatencyModel.paper_testbed()
        if network is None:
            network = Network(
                self.sim,
                self.latency,
                loss_probability=loss_probability,
                link_policies=link_policies,
            )
        elif loss_probability or link_policies:
            raise SimulationError(
                "pass loss_probability/link_policies on the shared Network, "
                "not on a cluster that reuses one"
            )
        self.network = network
        #: The simulator's observability bundle (repro.obs).
        self.obs = self.sim.obs
        self.clients: dict[str, DirectoryClient] = {}

    def enable_tracing(self, capacity: int | None = None):
        """Turn on the causal trace recorder (see docs/OBSERVABILITY.md).

        With *capacity* the recorder is a ring buffer holding the last
        N events (flight-recorder mode); without it the buffer is
        unbounded. Returns the recorder for convenience.
        """
        self.obs.tracer.enable(capacity)
        return self.obs.tracer

    # -- adversarial link faults (see repro.net.policy) -----------------

    def add_link_policy(self, policy):
        """Install a link-fault policy on this deployment's network."""
        return self.network.add_policy(policy)

    def remove_link_policy(self, policy) -> None:
        self.network.remove_policy(policy)

    def clear_link_policies(self) -> None:
        self.network.clear_policies()

    def add_client(
        self,
        client_name: str,
        rpc_timings: RpcTimings | None = None,
        retry_safe: bool = False,
        client_id: str | None = None,
        retry_rounds: int | None = None,
        cache_size: int = 0,
        cache_nocoherence: bool = False,
    ) -> DirectoryClient:
        """Attach a new client machine and return its DirectoryClient.

        ``retry_safe=True`` turns on the exactly-once session layer:
        mutating operations are stamped with (client_id, seqno) and
        blindly resent on RPC failure (see docs/PROTOCOL.md, "Session
        semantics").

        ``cache_size>0`` gives the client a coherent lookup cache (the
        deployment must run with ``cache_coherence=True`` or lookups
        simply never hit); ``cache_nocoherence=True`` is the chaos
        suite's stale-read control (acknowledge-but-ignore
        invalidations) and must never be used outside it.
        """
        address = f"{self.name}.client.{client_name}"
        transport = Transport(self.sim, self.network.attach(address))
        # Amoeba's trans() keeps retrying until it finds a server, so
        # the default client is persistent in the face of NOTHERE
        # bounces and locate misses.
        client = DirectoryClient(
            transport,
            self.service_port,
            rpc_timings
            or RpcTimings(
                reply_timeout_ms=10_000.0, max_attempts=40, locate_attempts=20
            ),
            retry_safe=retry_safe,
            client_id=client_id,
            **({"retry_rounds": retry_rounds} if retry_rounds is not None else {}),
            **({"cache_size": cache_size} if cache_size else {}),
            **(
                {"cache_nocoherence": cache_nocoherence}
                if cache_nocoherence
                else {}
            ),
        )
        self.clients[client_name] = client
        return client

    @property
    def service_port(self):
        raise NotImplementedError

    def run(self, until: float | None = None) -> float:
        return self.sim.run(until=until)

    def run_process(self, gen, name: str = "driver"):
        """Spawn *gen* and run the simulation until it completes."""
        return self.sim.run_until_complete(self.sim.spawn(gen, name))

    def report(self) -> dict:
        """Deployment-wide observability snapshot.

        Wire totals, per-kind frame counts, and (when the deployment
        has sites) per-site disk and CPU figures. Benches and examples
        print this to explain *where* the costs went.
        """
        out = {
            "simulated_ms": self.sim.now,
            "frames_sent": self.network.stats.frames_sent,
            "bytes_sent": self.network.stats.bytes_sent,
            "frames_dropped": self.network.stats.frames_dropped,
            "frames_by_kind": self.network.stats.snapshot(),
        }
        sites = getattr(self, "sites", None)
        if sites:
            out["sites"] = [
                {
                    "disk_ops": dict(site.disk.ops),
                    "dir_cpu_busy_ms": site.dir_transport.cpu.busy_ms,
                    "bullet_cpu_busy_ms": site.bullet_transport.cpu.busy_ms,
                }
                for site in sites
            ]
        servers = getattr(self, "servers", None)
        if servers:
            out["servers"] = [
                {
                    "reads": getattr(s, "reads_served", None),
                    "writes": getattr(s, "writes_served", None),
                    "refused": getattr(s, "requests_refused", None),
                    "operational": getattr(s, "operational", None),
                }
                for s in servers
                if s is not None
            ]
        view_history = getattr(self, "view_history", None)
        if view_history is not None:
            out["view_changes"] = view_history()
        out["metrics"] = self.obs.registry.snapshot()
        return out

    def format_report(self) -> str:
        """Human-readable rendering of :meth:`report`."""
        report = self.report()
        lines = [
            f"deployment {self.name!r} at t={report['simulated_ms']:.0f} ms",
            f"  wire: {report['frames_sent']} frames, "
            f"{report['bytes_sent']} bytes, "
            f"{report['frames_dropped']} dropped",
        ]
        top = sorted(
            report["frames_by_kind"].items(), key=lambda kv: -kv[1]
        )[:6]
        for kind, count in top:
            lines.append(f"    {kind:<28}{count:>8}")
        for i, site in enumerate(report.get("sites", [])):
            lines.append(
                f"  site {i}: disk {site['disk_ops']}, "
                f"dir-cpu {site['dir_cpu_busy_ms']:.0f} ms busy"
            )
        for i, server in enumerate(report.get("servers", [])):
            lines.append(
                f"  server {i}: reads={server['reads']} "
                f"writes={server['writes']} refused={server['refused']} "
                f"operational={server['operational']}"
            )
        return "\n".join(lines)


class GroupServiceCluster(BaseCluster):
    """The triplicated group directory service of the paper."""

    def __init__(
        self,
        n_servers: int = 3,
        name: str = "grp",
        seed: int = 0,
        latency: LatencyModel | None = None,
        config: ServiceConfig | None = None,
        sim: Simulator | None = None,
        network: Network | None = None,
        loss_probability: float = 0.0,
        link_policies=None,
        spares: int = 0,
        **config_overrides,
    ):
        super().__init__(
            name, seed, latency, sim, network, loss_probability, link_policies
        )
        #: Checksummed storage envelopes on every site disk (must be
        #: known before the sites — and their disks — are built).
        self.integrity = (
            config.integrity
            if config is not None
            else bool(config_overrides.get("integrity", False))
        )
        self.sites = [Site(self, i) for i in range(n_servers)]
        if config is None:
            config = ServiceConfig(
                name=name,
                server_addresses=tuple(site.dir_address for site in self.sites),
                **config_overrides,
            )
        self.config = config
        #: Pre-built standby sites: full machine + disk, attached to
        #: the network but NOT in the server set until activated by
        #: :meth:`add_server` (or the remediation controller).
        self.spare_sites = [Site(self, n_servers + i) for i in range(spares)]
        #: The cluster's *declared* shape — what
        #: :func:`repro.verify.check_resilience_restored` holds the
        #: end state to, whatever faults and remediations happened.
        self.declared_n_servers = self.config.n_servers
        self.declared_resilience = self.config.resilience
        self._evicted_addresses: list = []
        self._view_log_archive: list[dict] = []
        for site in self.sites:
            site.server = self._make_server(site)

    def _make_server(self, site: Site) -> GroupDirectoryServer:
        admin = AdminPartition(
            site.partition,
            site.index,
            self.config.n_servers,
            session_blocks=self.config.session_blocks,
        )
        return GroupDirectoryServer(
            self.config,
            site.index,
            site.dir_transport,
            site.bullet.port,
            admin,
        )

    @property
    def service_port(self):
        return self.config.port

    @property
    def servers(self) -> list[GroupDirectoryServer]:
        return [site.server for site in self.sites]

    @property
    def root_capability(self):
        """The service's root directory capability (deterministic)."""
        return owner_capability(
            self.config.port, ROOT_OBJECT, self.config.root_check
        )

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Boot every directory server (each begins with recovery)."""
        for site in self.sites:
            site.server.start()

    def wait_operational(self, timeout_ms: float = 30_000.0, quorum: int | None = None):
        """Run the simulation until the servers are serving.

        *quorum* defaults to all currently-alive servers.
        """
        needed = quorum if quorum is not None else sum(
            1 for s in self.servers if s is not None and s.alive
        )
        deadline = self.sim.now + timeout_ms
        while self.sim.now < deadline:
            up = sum(1 for s in self.servers if s is not None and s.operational)
            if up >= needed:
                return
            self.sim.run(until=min(self.sim.now + 20.0, deadline))
        raise SimulationError(
            f"service not operational after {timeout_ms} ms "
            f"({[s.operational for s in self.servers]})"
        )

    # -- failure injection --------------------------------------------------------

    def crash_server(self, index: int) -> None:
        """Crash directory server *index* (its disk and Bullet survive)."""
        self.sites[index].crash_directory_server()

    def restart_server(self, index: int) -> GroupDirectoryServer:
        """Reboot directory server *index*; it re-runs recovery."""
        site = self.sites[index]
        self._archive_view_log(site)
        site.dir_transport.restart()
        site.server = self._make_server(site)
        site.server.start()
        return site.server

    # -- elastic membership ----------------------------------------------------

    def site_of(self, address) -> Site | None:
        """The site (active or spare) whose directory server owns *address*."""
        for site in [*self.sites, *self.spare_sites]:
            if site.dir_address == address:
                return site
        return None

    def has_spare(self) -> bool:
        return bool(self.spare_sites)

    def add_server(self) -> GroupDirectoryServer:
        """Online replica add: boot the next spare as a full replica.

        The spare's address joins the configured server set, its blank
        disk sends it down the Fig. 6 recovery path — state-transfer a
        snapshot from the freshest incumbent, replay the ordered log
        above it, then ``start_join`` the live group — and every live
        replica rewrites its commit block against the new server set.
        Builds a brand-new site when the spare pool is empty.
        """
        if self.spare_sites:
            site = self.spare_sites.pop(0)
        else:
            used = [s.index for s in (*self.sites, *self.spare_sites)] or [-1]
            site = Site(self, max(used) + 1)
        self.config.server_addresses = (
            *self.config.server_addresses,
            site.dir_address,
        )
        self.sites.append(site)
        site.server = self._make_server(site)
        site.server.start()
        self._refresh_config_vectors()
        return site.server

    def evict_server(self, index: int) -> None:
        """Online replica evict: decommission replica *index*.

        The replica's machine is fail-stopped, the current sequencer
        excludes its address from the view (coordinator-driven leave),
        and the address leaves the configured server set — so majority
        and the configuration vector are computed over the members
        that remain. The site object stays in ``sites`` with
        ``server = None``, keeping server indexes stable.
        """
        site = self.sites[index]
        address = site.dir_address
        if site.server is not None:
            self._archive_view_log(site)
            site.crash_directory_server()
            site.server = None
        for other in self.sites:
            server = other.server
            if server is None or not server.alive:
                continue
            if server.member.is_sequencer:
                server.member.kernel.evict_member(address)
                break
        self.config.server_addresses = tuple(
            a for a in self.config.server_addresses if a != address
        )
        self._evicted_addresses.append(address)
        self._refresh_config_vectors()

    def change_resilience(self, resilience: int, declared: bool = True):
        """Runtime resilience change via an operational replica
        (``yield from`` inside a sim process). Returns the seqno of
        the ordered marker. With *declared* (operator intent, the
        default) the new degree also becomes the one
        ``check_resilience_restored`` holds the cluster to; the
        remediation controller's temporary scale-ups pass False.
        """
        for server in self.operational_servers():
            seqno = yield from server.change_resilience(resilience)
            if declared:
                self.declared_resilience = resilience
            return seqno
        raise SimulationError("no operational replica to change resilience")

    def _refresh_config_vectors(self) -> None:
        """Have every live replica rewrite its commit block against
        the current server set (positional configuration vectors go
        stale when the address tuple changes shape)."""
        for site in self.sites:
            server = site.server
            if server is not None and server.alive and server.operational:
                self.sim.spawn(
                    server.refresh_config_vector(),
                    f"dir.{site.index}.reconfig",
                )

    def _archive_view_log(self, site: Site) -> None:
        """Preserve a to-be-replaced kernel's membership history."""
        server = site.server
        if server is None:
            return
        self._view_log_archive.extend(
            {"node": str(site.dir_address), **entry}
            for entry in server.member.kernel.view_log
        )

    def view_history(self) -> list[dict]:
        """Every view change any replica adopted — epoch, members,
        sequencer, resilience, trigger — across restarts and
        evictions, deterministically ordered."""
        entries = list(self._view_log_archive)
        for site in [*self.sites, *self.spare_sites]:
            server = site.server
            if server is None:
                continue
            entries.extend(
                {"node": str(site.dir_address), **entry}
                for entry in server.member.kernel.view_log
            )
        entries.sort(key=lambda e: (e["at_ms"], e["node"], e["epoch"]))
        return entries

    def partition_network(self, *groups) -> None:
        """Split the network; each group lists *server indexes*. The
        Bullet machine of a site follows its site. The FIRST group
        stays with all unmentioned machines (clients), so clients keep
        talking to it unless moved explicitly."""
        address_groups = []
        for group in groups[1:]:
            addresses = []
            for index in group:
                addresses.append(self.sites[index].dir_address)
                addresses.append(self.sites[index].bullet_address)
            address_groups.append(addresses)
        self.network.partitions.split(address_groups)

    def heal_network(self) -> None:
        self.network.partitions.heal()

    # -- verification ---------------------------------------------------------------

    def operational_servers(self) -> list[GroupDirectoryServer]:
        return [s for s in self.servers if s is not None and s.operational]

    def replicas_consistent(self) -> bool:
        """All operational replicas hold identical state."""
        fingerprints = {
            s.state.fingerprint() for s in self.operational_servers()
        }
        return len(fingerprints) <= 1


class NvramServiceCluster(GroupServiceCluster):
    """The group service with a 24 KB NVRAM board per server."""

    def __init__(self, *args, nvram_bytes: int | None = None, **kwargs):
        self._nvram_bytes = nvram_bytes
        super().__init__(*args, **kwargs)

    def _make_server(self, site: Site):
        from repro.directory.nvram_server import NvramDirectoryServer
        from repro.storage.nvram import PAPER_NVRAM_BYTES, Nvram

        nvram = getattr(site, "nvram", None)
        if nvram is None:
            nvram = Nvram(
                self.sim,
                capacity_bytes=self._nvram_bytes or PAPER_NVRAM_BYTES,
                name=f"{self.name}.nvram{site.index}",
                integrity=self.integrity,
            )
            site.nvram = nvram  # the board survives server restarts
        admin = AdminPartition(
            site.partition,
            site.index,
            self.config.n_servers,
            session_blocks=self.config.session_blocks,
        )
        return NvramDirectoryServer(
            self.config,
            site.index,
            site.dir_transport,
            site.bullet.port,
            admin,
            nvram,
        )


class RpcServiceCluster(BaseCluster):
    """The duplicated RPC directory service (the previous design)."""

    def __init__(
        self,
        name: str = "rpc",
        seed: int = 0,
        latency: LatencyModel | None = None,
        config: ServiceConfig | None = None,
        sim: Simulator | None = None,
        network: Network | None = None,
        loss_probability: float = 0.0,
        link_policies=None,
        **config_overrides,
    ):
        super().__init__(
            name, seed, latency, sim, network, loss_probability, link_policies
        )
        self.integrity = (
            config.integrity
            if config is not None
            else bool(config_overrides.get("integrity", False))
        )
        self.sites = [Site(self, i) for i in range(2)]
        if config is None:
            config = ServiceConfig(
                name=name,
                server_addresses=tuple(site.dir_address for site in self.sites),
                **config_overrides,
            )
        self.config = config
        from repro.directory.rpc_server import RpcDirectoryServer

        for site in self.sites:
            admin = AdminPartition(
            site.partition, site.index, 2, session_blocks=self.config.session_blocks
        )
            site.server = RpcDirectoryServer(
                self.config, site.index, site.dir_transport, site.bullet.port, admin
            )

    @property
    def service_port(self):
        return self.config.port

    @property
    def servers(self):
        return [site.server for site in self.sites]

    @property
    def root_capability(self):
        return owner_capability(self.config.port, ROOT_OBJECT, self.config.root_check)

    def start(self) -> None:
        for site in self.sites:
            site.server.start()

    def wait_operational(self, timeout_ms: float = 30_000.0):
        deadline = self.sim.now + timeout_ms
        while self.sim.now < deadline:
            if all(s.operational for s in self.servers):
                return
            self.sim.run(until=min(self.sim.now + 20.0, deadline))
        raise SimulationError("RPC directory service did not come up")

    def crash_server(self, index: int) -> None:
        self.sites[index].crash_directory_server()

    def restart_server(self, index: int):
        """Reboot one RPC directory server; it refreshes from its peer
        (or its own disk when the peer is unreachable)."""
        from repro.directory.rpc_server import RpcDirectoryServer

        site = self.sites[index]
        site.dir_transport.restart()
        admin = AdminPartition(
            site.partition, site.index, 2, session_blocks=self.config.session_blocks
        )
        site.server = RpcDirectoryServer(
            self.config, site.index, site.dir_transport, site.bullet.port, admin
        )
        site.server.start()
        return site.server

    def settle(self, ms: float = 1000.0) -> None:
        """Let lazy replication drain."""
        self.sim.run(until=self.sim.now + ms)

    def replicas_content_consistent(self) -> bool:
        """Directory contents equal on both replicas (the RPC design's
        counters legitimately differ — lazy replication)."""
        fingerprints = {
            s.state.content_fingerprint()
            for s in self.servers
            if s is not None and s.operational
        }
        return len(fingerprints) <= 1

    # Uniform verification surface (repro.verify / repro.chaos): for
    # the RPC design "consistent" can only mean content-consistent.
    def operational_servers(self):
        return [s for s in self.servers if s is not None and s.operational]

    def replicas_consistent(self) -> bool:
        return self.replicas_content_consistent()


class ReplicatedBulletCluster(BaseCluster):
    """The section-5 extension: the Bullet file service itself
    replicated over group communication (optionally with NVRAM)."""

    def __init__(
        self,
        name: str = "rbul",
        seed: int = 0,
        n_servers: int = 3,
        nvram: bool = False,
        latency: LatencyModel | None = None,
        sim: Simulator | None = None,
        network: Network | None = None,
        loss_probability: float = 0.0,
        link_policies=None,
    ):
        super().__init__(
            name, seed, latency, sim, network, loss_probability, link_policies
        )
        from repro.storage.nvram import Nvram
        from repro.storage.replicated_bullet import (
            ReplicatedBulletConfig,
            ReplicatedBulletServer,
        )

        self.addresses = tuple(f"{name}.srv{i}" for i in range(n_servers))
        self.config = ReplicatedBulletConfig(name, self.addresses)
        self.disks = []
        self.nvrams = []
        self.servers = []
        for i, address in enumerate(self.addresses):
            transport = Transport(self.sim, self.network.attach(address))
            disk = Disk(self.sim, f"{name}.disk{i}", latency=self.latency.disk)
            board = Nvram(self.sim, name=f"{name}.nvram{i}") if nvram else None
            self.disks.append(disk)
            self.nvrams.append(board)
            self.servers.append(
                ReplicatedBulletServer(self.config, i, transport, disk, board)
            )
        self._transports = {a: self.network.nic(a) for a in self.addresses}

    @property
    def service_port(self):
        return self.config.port

    def add_file_client(self, client_name: str):
        """A BulletClient talking to the replicated service."""
        from repro.storage.bullet import BulletClient

        address = f"{self.name}.client.{client_name}"
        transport = Transport(self.sim, self.network.attach(address))
        rpc = RpcClient(
            transport, RpcTimings(reply_timeout_ms=10_000.0, max_attempts=20)
        )
        return BulletClient(rpc, self.config.port)

    def start(self) -> None:
        for server in self.servers:
            server.start()

    def wait_operational(self, timeout_ms: float = 30_000.0):
        deadline = self.sim.now + timeout_ms
        while self.sim.now < deadline:
            if all(s.operational for s in self.servers if s.alive):
                return
            self.sim.run(until=min(self.sim.now + 20.0, deadline))
        raise SimulationError("replicated bullet service did not come up")

    def crash_server(self, index: int) -> None:
        server = self.servers[index]
        server.crash()
        server.transport.shutdown()

    def restart_server(self, index: int):
        from repro.storage.replicated_bullet import ReplicatedBulletServer

        old = self.servers[index]
        old.transport.restart()
        replacement = ReplicatedBulletServer(
            self.config,
            index,
            old.transport,
            self.disks[index],
            self.nvrams[index],
        )
        replacement.start()
        self.servers[index] = replacement
        return replacement

    def tables_consistent(self) -> bool:
        tables = {
            tuple(sorted(s.table.items()))
            for s in self.servers
            if s.alive and s.operational
        }
        return len(tables) <= 1


class NfsServiceCluster(BaseCluster):
    """The single-copy SunOS/NFS-like baseline."""

    def __init__(
        self,
        name: str = "nfs",
        seed: int = 0,
        latency: LatencyModel | None = None,
        sim: Simulator | None = None,
        network: Network | None = None,
        loss_probability: float = 0.0,
        link_policies=None,
        **config_overrides,
    ):
        super().__init__(
            name, seed, latency, sim, network, loss_probability, link_policies
        )
        from repro.directory.nfs_server import NfsDirectoryServer, NfsFileServer

        self.server_address = f"{name}.server"
        transport = Transport(self.sim, self.network.attach(self.server_address))
        self.config = ServiceConfig(
            name=name, server_addresses=(self.server_address,), **config_overrides
        )
        self.server = NfsDirectoryServer(self.config, transport)
        self.file_server = NfsFileServer(transport, f"{name}.files")

    @property
    def service_port(self):
        return self.config.port

    @property
    def root_capability(self):
        return owner_capability(self.config.port, ROOT_OBJECT, self.config.root_check)

    def start(self) -> None:
        pass  # constructed running

    def wait_operational(self, timeout_ms: float = 0.0):
        return
