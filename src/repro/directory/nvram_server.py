"""The group directory service with NVRAM in the critical path.

The paper's fastest variant (section 4.1): instead of storing modified
directories on disk during an update, the server appends a
modification record to a 24 KB battery-backed NVRAM board. The board
is a *reliable* medium, so fault tolerance is unchanged, while the
update's critical path shrinks from two disk subsystems to one bus
write — 6.8x faster on the append-delete test.

A background flusher applies the log to disk when the server has been
idle for a while or when the board fills up. The /tmp optimization
falls out naturally: when a delete arrives while the matching append
is still in the log, both records annihilate and *no* disk operation
ever happens for that temporary name.

After a crash the board's contents survive; recovery replays the log
on top of the disk state (replay is idempotent: records whose effect
already reached disk fail validation deterministically and are
skipped).

Client cache coherence (docs/PROTOCOL.md) is inherited unchanged from
:class:`GroupDirectoryServer`: every hook — lease grants on coherent
reads, invalidation emission at the apply point, the write barrier
before the reply — lives in the shared request/apply paths, not in
the ``_persist_*`` methods this class overrides, so an NVRAM
deployment with ``cache_coherence=True`` behaves identically (the
invalidation round trip overlaps the NVRAM append instead of the disk
flush).
"""

from __future__ import annotations

from repro.directory.group_server import GroupDirectoryServer
from repro.directory.operations import (
    AppendRow,
    ChmodRow,
    CreateDir,
    DeleteDir,
    DeleteRow,
)
from repro.errors import CapabilityError, DirectoryError, NvramFull
from repro.storage.nvram import Nvram, NvramRecord

#: Flush when the server has seen no update for this long.
IDLE_FLUSH_MS = 200.0
#: How often the flusher wakes to check for idleness / pressure.
FLUSH_POLL_MS = 50.0
#: CPU cost of cancelling log records (scan + compaction of the
#: board). Calibrated so the Fig. 9 NVRAM ceiling lands near the
#: paper's 45 pairs/s.
ANNIHILATION_CPU_MS = 4.0


class NvramDirectoryServer(GroupDirectoryServer):
    """Group directory server whose commit path is an NVRAM append."""

    PERSIST_PHASE = "nvram"

    def __init__(self, config, index, transport, bullet_port, admin, nvram: Nvram):
        super().__init__(config, index, transport, bullet_port, admin)
        self.nvram = nvram
        self._dirty: set[int] = set()  # objects with unflushed changes
        self._deleted_dirty: set[int] = set()  # deleted, not yet on disk
        self._dirty_sessions: set[str] = set()  # unflushed session entries
        self._last_update_at = 0.0
        self._flush_requested = False
        # Persist-stage accounting (capacity sampler): sim-time spent
        # in the NVRAM commit path — programmed I/O, annihilation CPU,
        # and pressure flushes (docs/OBSERVABILITY.md §10).
        self._c_persist_busy = self.sim.obs.registry.counter(
            str(self.me), "dir.persist_busy_ms")

    def start(self) -> None:
        super().start()
        self._processes.append(
            self.sim.spawn(self._flusher(), f"dir.{self.index}.flusher")
        )

    # ------------------------------------------------------------------
    # the NVRAM commit path
    # ------------------------------------------------------------------

    def _persist_effects(self, op, effects, lineage=None):
        if not (effects.touched or effects.deleted or effects.sessions):
            return  # dedup hit: replayed reply, nothing to log
        started = self.sim.now
        self._last_update_at = started
        if self._try_annihilate(op):
            yield from self.transport.cpu.use(ANNIHILATION_CPU_MS)
            self._c_persist_busy.inc(self.sim.now - started)
            return
        record = NvramRecord(
            key=self._record_key(op),
            op=type(op).__name__,
            payload=(op, self.state.update_seqno),
            size=op.wire_size(),
        )
        while True:
            try:
                # The board write is programmed I/O: it occupies the
                # server's CPU, so updates serialize through it (this
                # is what puts the Fig. 9 ceiling near 45 pairs/s).
                yield from self.transport.cpu.use(self.nvram.write_ms)
                yield from self.nvram.append(
                    record, charge_time=False, lineage=lineage
                )
                break
            except NvramFull:
                # Synchronous pressure flush, then retry the append.
                yield from self._flush()
        self._dirty.update(effects.touched)
        for obj in effects.deleted:
            self._dirty.discard(obj)
            self._deleted_dirty.add(obj)
        self._dirty_sessions.update(effects.sessions)
        self._c_persist_busy.inc(self.sim.now - started)

    def _persist_batch(self, items, lineage=None):
        """Batched commit path: the whole batch's log appends go to
        the board under one programmed-I/O CPU grant (the bus writes
        stream back-to-back instead of paying one scheduler round
        trip each). Records are still examined strictly in sequence
        order so in-batch annihilation — an append whose delete
        arrives a few slots later — behaves exactly as it would have
        one record at a time."""
        started = self.sim.now
        self._last_update_at = started
        owed_cpu_ms = 0.0
        for item in items:
            op = item.op
            effects = item.effects
            if not (effects.touched or effects.deleted or effects.sessions):
                continue  # dedup hit: replayed reply, nothing to log
            if self._try_annihilate(op):
                owed_cpu_ms += ANNIHILATION_CPU_MS
                continue
            record = NvramRecord(
                key=self._record_key(op, seqno=item.seqno,
                                     next_object=item.next_object),
                op=type(op).__name__,
                payload=(op, item.seqno),
                size=op.wire_size(),
            )
            while True:
                try:
                    yield from self.nvram.append(
                        record, charge_time=False, lineage=lineage
                    )
                    owed_cpu_ms += self.nvram.write_ms
                    break
                except NvramFull:
                    # Pay what the batch owes so far, then a
                    # synchronous pressure flush, then retry.
                    if owed_cpu_ms:
                        yield from self.transport.cpu.use(owed_cpu_ms)
                        owed_cpu_ms = 0.0
                    yield from self._flush()
            self._dirty.update(item.effects.touched)
            for obj in item.effects.deleted:
                self._dirty.discard(obj)
                self._deleted_dirty.add(obj)
            self._dirty_sessions.update(item.effects.sessions)
        if owed_cpu_ms:
            yield from self.transport.cpu.use(owed_cpu_ms)
        self._c_persist_busy.inc(self.sim.now - started)

    def _record_key(self, op, seqno=None, next_object=None):
        """The annihilation key; *seqno*/*next_object* are the state
        counters as of this op's apply point (batched applies capture
        them, the singleton path reads the live state)."""
        if isinstance(op, (AppendRow, ChmodRow, DeleteRow)):
            return (op.cap.object_number, op.name)
        if isinstance(op, DeleteDir):
            return (op.cap.object_number, None)
        if isinstance(op, CreateDir):
            # The object number just allocated is next_object - 1.
            if next_object is None:
                next_object = self.state.next_object
            return (next_object - 1, None)
        if seqno is None:
            seqno = self.state.update_seqno
        return ("set-op", seqno)

    def _try_annihilate(self, op) -> bool:
        """The /tmp optimization. Returns True when the operation (and
        its still-logged counterpart) cancel without touching disk."""
        if isinstance(op, DeleteRow):
            key = (op.cap.object_number, op.name)
            pending = self.nvram.pending_for_key(key)
            if pending and pending[0].op == "AppendRow":
                # The row never reached the disk: the whole history of
                # this name cancels out.
                self.nvram.annihilate(lambda r: r.key == key)
                return True
        if isinstance(op, DeleteDir):
            obj = op.cap.object_number
            pending = self.nvram.pending_for_key((obj, None))
            if pending and pending[0].op == "CreateDir":
                # Directory created and deleted between flushes: drop
                # every record touching it.
                self.nvram.annihilate(
                    lambda r: isinstance(r.key, tuple) and r.key[0] == obj
                )
                self._dirty.discard(obj)
                return True
        return False

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------

    def _flusher(self):
        while self.alive:
            yield self.sim.sleep(FLUSH_POLL_MS)
            if not self.operational or len(self.nvram) == 0:
                continue
            idle = self.sim.now - self._last_update_at >= IDLE_FLUSH_MS
            pressure = self.nvram.free_bytes < self.nvram.capacity_bytes // 4
            if idle or pressure or self._flush_requested:
                self._flush_requested = False
                yield from self._flush()

    def _flush(self):
        """Apply the log to disk: write each dirty directory's current
        contents (one Bullet file + object-table commit), then clear
        the flushed records from the board.

        Ordering matters: records leave the board only AFTER their
        effects are safely on disk, so a crash mid-flush never loses an
        acknowledged update (the board still holds the unflushed tail
        and recovery replays it). Records logged after the flush began
        are kept — their directories are in the fresh dirty set.
        """
        flush_floor = self.state.update_seqno
        flush_lineage = ("flush", str(self.me))
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "dir", "dir.flush.start",
                lineage=flush_lineage,
                logged=len(self.nvram), dirty=len(self._dirty),
            )
        dirty, self._dirty = self._dirty, set()
        deleted, self._deleted_dirty = self._deleted_dirty, set()
        for obj in sorted(dirty):
            if obj not in self.state.directories:
                deleted.add(obj)
                continue
            data = self.state.directories[obj].to_bytes()
            old_entry = self.admin.entries.get(obj)
            new_cap = yield from self.bullet.create(data, lineage=flush_lineage)
            yield from self.admin.store_entry(
                obj, new_cap, self.state.update_seqno, self.state.checks[obj],
                lineage=flush_lineage,
            )
            if old_entry is not None:
                self._remove_bullet_file_later(old_entry[0])
        for obj in sorted(deleted):
            if obj in self.admin.entries:
                old_cap = self.admin.entries[obj][0]
                yield from self.admin.remove_entry(
                    obj, self.state.update_seqno, self.state.next_object,
                    lineage=flush_lineage,
                )
                self._remove_bullet_file_later(old_cap)
        # Session records flush after the data (same rationale as the
        # disk variant: a crash in between costs a re-execution that
        # fails deterministically, never a silent lost update) and
        # before the board cleanup, so an acknowledged session entry
        # is always recoverable from disk or log.
        dirty_sessions, self._dirty_sessions = self._dirty_sessions, set()
        for client_id in sorted(dirty_sessions):
            entry = self.state.sessions.get(client_id)
            if entry is not None:
                yield from self.admin.store_session(
                    client_id, entry, lineage=flush_lineage
                )
        # Everything up to flush_floor is now on disk: those records
        # may leave the board. (Later records stay for the next flush.)
        self.nvram.remove_flushed(lambda r: r.payload[1] <= flush_floor)
        if self._obs.tracer.enabled:
            self._obs.tracer.emit(
                str(self.me), "dir", "dir.flush.end",
                lineage=flush_lineage, remaining=len(self.nvram),
            )

    # ------------------------------------------------------------------
    # recovery integration
    # ------------------------------------------------------------------

    def best_known_seqno(self) -> int:
        """The NVRAM board survives crashes, so its logged updates
        count toward this server's recovery sequence number — except
        records a battery blip damaged (when integrity checking is
        on), and never while the disk itself is quarantined: the board
        only holds the unflushed tail, so it cannot make up for
        entries the quarantined disk may have lost."""
        base = super().best_known_seqno()
        if self.admin.quarantined_blocks:
            return base
        logged = max(
            (
                record.payload[1]
                for record in self.nvram.snapshot()
                if not (record.corrupt and self.nvram.integrity)
            ),
            default=0,
        )
        return max(base, logged)

    def rebuild_state_from_disk(self):
        """Disk state plus a replay of the surviving log.

        Only records *newer* than the disk's claimed sequence number
        are replayed: a record whose effect already reached the disk
        (the crash hit between the flush's writes and its board
        cleanup) must be skipped, or a CreateDir would mint a spurious
        second directory.
        """
        yield from super().rebuild_state_from_disk()
        disk_floor = self.state.update_seqno
        replayed = 0
        for record in self.nvram.snapshot():
            op, seqno = record.payload
            if seqno <= disk_floor:
                continue  # already reflected in the disk state
            if not self.nvram.validate(record):
                # Battery blip, integrity on: the record is damaged
                # and is dropped rather than replayed; redelivery or a
                # donor transfer restores the update. Without
                # integrity checking validate() replays it as-is and
                # counts a silently corrupt replay.
                continue
            try:
                _, effects = self.state.apply(op)
                self._dirty.update(effects.touched)
                for obj in effects.deleted:
                    self._dirty.discard(obj)
                    self._deleted_dirty.add(obj)
                self._dirty_sessions.update(effects.sessions)
            except (DirectoryError, CapabilityError):
                pass  # cancelled by a later record in the same log
            self.state.update_seqno = max(self.state.update_seqno, seqno)
            replayed += 1
        return replayed

    def _recover(self):
        yield from super()._recover()
        # Whatever path recovery took, the board and the disk must
        # agree with the adopted state: flush everything once.
        if (
            len(self.nvram) > 0
            or self._dirty
            or self._deleted_dirty
            or self._dirty_sessions
        ):
            self._dirty.update(
                obj
                for obj in self.state.directories
                if obj in self.admin.entries or obj != 1
            )
            yield from self._flush()
