"""Wire-level directory operations (the paper's Fig. 2).

Eight operations: three on whole directories, three on single rows,
and two on *sets* of rows (which may span directories — one indivisible
operation each, exactly the granularity the paper supports; multi-
operation transactions are explicitly out of scope).

Each operation dataclass knows whether it reads or writes, which the
servers use to route it down the read path (local, no communication)
or the write path (SendToGroup / intentions RPC).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amoeba.capability import Capability
from repro.directory.model import DEFAULT_COLUMNS


@dataclass(frozen=True)
class DirectoryOp:
    """Base class for all requests."""

    @property
    def is_read(self) -> bool:
        raise NotImplementedError

    def wire_size(self) -> int:
        """Approximate request size in bytes (for network accounting)."""
        return 96


@dataclass(frozen=True)
class CreateDir(DirectoryOp):
    """Create a new directory; returns its owner capability.

    *check* and *object hints* are filled in by the initiating server:
    all replicas must use the same check field for the new directory,
    so the initiator generates it and ships it with the broadcast
    (section 3.1 of the paper).
    """

    columns: tuple = DEFAULT_COLUMNS
    check: int | None = None  # injected by the initiating server
    #: Used by the RPC implementation only: the two servers allocate
    #: object numbers from disjoint parity classes, and the initiator
    #: ships its choice so the lazy replica creates the same object.
    #: The group implementation leaves this None (the total order
    #: makes counter-based allocation deterministic).
    object_number: int | None = None

    @property
    def is_read(self) -> bool:
        return False


@dataclass(frozen=True)
class DeleteDir(DirectoryOp):
    """Delete an (empty) directory. Requires DESTROY rights."""

    cap: Capability
    force: bool = False  # allow deleting a non-empty directory

    @property
    def is_read(self) -> bool:
        return False


@dataclass(frozen=True)
class ListDir(DirectoryOp):
    """List the rows visible through the capability's column mask."""

    cap: Capability

    @property
    def is_read(self) -> bool:
        return True


@dataclass(frozen=True)
class AppendRow(DirectoryOp):
    """Add a (name, capability-set) row. Requires MODIFY rights."""

    cap: Capability
    name: str
    capabilities: tuple

    @property
    def is_read(self) -> bool:
        return False

    def wire_size(self) -> int:
        return 96 + len(self.name) + 16 * len(self.capabilities)


@dataclass(frozen=True)
class ChmodRow(DirectoryOp):
    """Change protection: replace the masked columns of a row."""

    cap: Capability
    name: str
    column_mask: int
    capabilities: tuple

    @property
    def is_read(self) -> bool:
        return False

    def wire_size(self) -> int:
        return 96 + len(self.name) + 16 * len(self.capabilities)


@dataclass(frozen=True)
class DeleteRow(DirectoryOp):
    """Remove a row. Requires MODIFY rights."""

    cap: Capability
    name: str

    @property
    def is_read(self) -> bool:
        return False

    def wire_size(self) -> int:
        return 96 + len(self.name)


@dataclass(frozen=True)
class LookupSet(DirectoryOp):
    """Look up capabilities for a set of (directory, name) pairs.

    Returns a list aligned with *items*: the first visible capability
    of each row, or None for names that do not exist.
    """

    items: tuple  # of (Capability, str)

    @property
    def is_read(self) -> bool:
        return True

    def wire_size(self) -> int:
        return 64 + sum(24 + len(name) for _, name in self.items)


@dataclass(frozen=True)
class CoherentLookup(LookupSet):
    """A :class:`LookupSet` whose reply carries coherence metadata.

    Cache-enabled clients send these instead of plain ``LookupSet``.
    The server answers with an envelope ``{"results": [...], "epoch":
    update_seqno, "lease_ms": ...}`` — the results are computed by the
    exact same state-machine query (``DirectoryState.query`` dispatches
    on ``isinstance(op, LookupSet)``), but the reply additionally
    piggybacks the replica's applied update seqno (the cache epoch) and
    grants the client a read lease: until the lease expires the server
    promises to push an invalidation record for every write that could
    affect a cached entry, and writes do not complete until those
    invalidations are acknowledged (docs/PROTOCOL.md).
    """

    def wire_size(self) -> int:
        # A plain LookupSet plus the lease/epoch framing.
        return super().wire_size() + 16


@dataclass(frozen=True)
class ReplaceSet(DirectoryOp):
    """Replace capabilities in a set of rows, indivisibly.

    *items* are (directory capability, row name, new capabilities)
    triples; either every replacement happens or none does.
    """

    items: tuple  # of (Capability, str, tuple[Capability | None, ...])

    @property
    def is_read(self) -> bool:
        return False

    def wire_size(self) -> int:
        return 64 + sum(
            24 + len(name) + 16 * len(caps) for _, name, caps in self.items
        )


@dataclass(frozen=True)
class SessionOp(DirectoryOp):
    """A mutating operation stamped with the client's session identity.

    Clients in ``retry_safe`` mode wrap every write in one of these;
    the replicated state machine keeps a per-client table of the last
    executed *session_seqno* and its reply, so a retried duplicate is
    answered from the cache instead of re-executed (exactly-once
    semantics across server failover).
    """

    op: DirectoryOp
    client_id: str
    session_seqno: int

    @property
    def is_read(self) -> bool:
        return self.op.is_read

    def wire_size(self) -> int:
        # client id + 64-bit seqno + framing.
        return self.op.wire_size() + 24


def unwrap(op: DirectoryOp) -> DirectoryOp:
    """The operation inside a session envelope (or *op* itself)."""
    return op.op if isinstance(op, SessionOp) else op


def invalidation_keys(op: DirectoryOp) -> tuple:
    """The ``(object_number, name-or-None)`` cache keys *op* dirties.

    This is the invalidation record a replica pushes to its leased
    clients when it applies *op* (docs/PROTOCOL.md "Client cache
    coherence"). ``(obj, name)`` invalidates that one row's cached
    lookups (under every rights mask); ``(obj, None)`` invalidates
    every cached row of the directory (used for DeleteDir, after which
    any lookup through the dead capability must go remote to observe
    the NotFound). Reads and CreateDir (a brand-new object nothing can
    have cached) dirty nothing.
    """
    op = unwrap(op)
    if isinstance(op, (AppendRow, ChmodRow, DeleteRow)):
        return ((op.cap.object_number, op.name),)
    if isinstance(op, ReplaceSet):
        return tuple((cap.object_number, name) for cap, name, _ in op.items)
    if isinstance(op, DeleteDir):
        return ((op.cap.object_number, None),)
    return ()


#: Operation name -> class, for logs and workload configuration.
OPERATIONS = {
    "create_dir": CreateDir,
    "delete_dir": DeleteDir,
    "list_dir": ListDir,
    "append_row": AppendRow,
    "chmod_row": ChmodRow,
    "delete_row": DeleteRow,
    "lookup_set": LookupSet,
    "replace_set": ReplaceSet,
}
# CoherentLookup is deliberately absent: OPERATIONS mirrors the
# paper's Fig. 2 request set, and a coherent lookup is the same
# logical operation as lookup_set — the envelope is client-cache
# protocol, not API surface.
