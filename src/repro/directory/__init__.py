"""The fault-tolerant directory service (the paper's contribution).

Four interchangeable implementations of the same client-visible
service (the operations of the paper's Fig. 2):

* :class:`~repro.directory.group_server.GroupDirectoryServer` — the
  paper's contribution: triplicated, active replication over
  totally-ordered group communication, majority rule, partition
  tolerance, Skeen-based recovery;
* :class:`~repro.directory.rpc_server.RpcDirectoryServer` — the
  previous Amoeba implementation: duplicated, intentions lists over
  RPC, lazy replication, no partition tolerance;
* :class:`~repro.directory.nvram_server.NvramDirectoryServer` — the
  group implementation with the 24 KB NVRAM write log replacing disk
  writes in the critical path;
* :class:`~repro.directory.nfs_server.NfsDirectoryServer` — a
  single-copy SunOS/NFS-like baseline with no fault tolerance.

Clients use :class:`~repro.directory.client.DirectoryClient` against
any of them. Whole deployments (servers + Bullet servers + disks +
clients) are assembled by :mod:`repro.cluster`.
"""

from repro.directory.client import DirectoryClient
from repro.directory.model import Directory, DirRow
from repro.directory.operations import (
    AppendRow,
    ChmodRow,
    CreateDir,
    DeleteDir,
    DeleteRow,
    ListDir,
    LookupSet,
    ReplaceSet,
)
from repro.directory.state import DirectoryState

__all__ = [
    "AppendRow",
    "ChmodRow",
    "CreateDir",
    "DeleteDir",
    "DeleteRow",
    "DirRow",
    "Directory",
    "DirectoryClient",
    "DirectoryState",
    "ListDir",
    "LookupSet",
    "ReplaceSet",
]
