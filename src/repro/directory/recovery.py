"""The recovery protocol of the group directory service (Fig. 6).

A server runs recovery when it boots (fresh or after a crash) and when
its group loses the majority. The protocol, following the paper:

1. **(Re)join** the server group, or create it if no sequencer
   answers.
2. **Wait** until the group holds a majority of the configured
   servers; on timeout, leave and start over (two minority groups may
   have formed on both sides of a partition — neither may proceed).
3. **Skeen's algorithm**: exchange mourned sets and sequence numbers
   with every group member over RPC. The *last set* (all servers
   minus the union of mourned sets) is the set of servers that may
   have performed the latest update; unless it is a subset of the new
   group, recovery must wait for its members — except under the §3.2
   *improved rule*: a server that never went down and holds the
   highest sequence number cannot have missed an update, so it may
   proceed (no majority existed while it was failed, hence no updates
   happened).
4. **State transfer** from the member with the highest sequence
   number; the *recovering* flag is set in the commit block for the
   duration, so a crash mid-transfer is detected at next boot (such a
   server reports sequence number zero — its state is a mixture).
5. Write the final commit block (new configuration vector, recovering
   cleared) and enter normal operation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.directory.state import DirectoryState
from repro.errors import (
    GroupFailure,
    GroupResetFailed,
    LocateError,
    RpcError,
    ServiceDown,
)
from repro.group.kernel import STATE_IDLE, STATE_MEMBER


@dataclass
class RecoveryOutcome:
    """What one successful recovery did (metrics for bench E7)."""

    rounds: int
    donor: object
    transferred_dirs: int
    applied_kernel: int
    duration_ms: float
    used_improved_rule: bool


def run_recovery(server):
    """Run Fig. 6 to completion for *server* (``yield from``).

    Returns a :class:`RecoveryOutcome`; loops until recovery succeeds
    (or raises GroupResetFailed after ``recovery.max_rounds``).
    """
    sim = server.sim
    cfg = server.config
    timings = cfg.recovery
    rng = sim.rng.stream(f"dir.recovery.{server.me}")
    started = sim.now

    if not getattr(server, "_admin_loaded", False):
        yield from server.admin.load()
        server._admin_loaded = True
        # The crashed-during-recovery rule applies to the disk as
        # found at boot; capture it once (the flag may be set again
        # by our own transfer below without zeroing our claim).
        server.boot_seqno = server.admin.highest_seqno()

    tracer = sim.obs.tracer

    def trace_phase(phase: str, **args) -> None:
        if tracer.enabled:
            tracer.emit(str(server.me), "dir", "dir.recover.phase",
                        phase=phase, round=rounds, **args)

    rounds = 0
    used_improved_rule = False
    joined_fresh = False
    while timings.max_rounds is None or rounds < timings.max_rounds:
        rounds += 1

        # -- Phase 1: rejoin the server group, or create it ------------
        trace_phase("join")
        member = server.member
        if member.kernel.state != STATE_MEMBER:
            member.kernel.state = STATE_IDLE
            # A join (unlike a reset) truncates kernel history to the
            # sequencer's floor and re-bases our delivery horizon; if
            # we carried applied state in, its continuity with what the
            # group will deliver next is now suspect (phase 4 cares).
            joined_fresh = True
            try:
                yield from member.join()
            except GroupFailure:
                member.create(cfg.resilience)

        # -- Phase 2: wait for a majority -------------------------------
        deadline = sim.now + timings.majority_wait_ms
        while sim.now < deadline and server.members_present() < cfg.majority:
            yield sim.sleep(timings.poll_ms)
            if member.info().state == "failed":
                try:
                    yield from member.reset()
                except GroupResetFailed:
                    break
        override = getattr(server, "_admin_override", False)
        if (
            server.members_present() < cfg.majority and not override
        ) or not member.is_member:
            yield from _leave_quietly(server)
            yield sim.sleep(
                rng.uniform(timings.backoff_min_ms, timings.backoff_max_ms)
            )
            continue

        # -- Phase 3: Skeen's algorithm ---------------------------------
        trace_phase("exchange")
        my_seqno = server.best_known_seqno()
        mourned = set(server.mourned_set())
        newgroup = {server.me}
        seqnos = {server.me: my_seqno}
        operational_peers = set()
        peers = [
            a
            for a in member.info().view
            if a != server.me and a in cfg.server_addresses
        ]
        for peer in peers:
            try:
                reply = yield from server.rpc_client.trans(
                    cfg.recovery_port_of(peer),
                    {"op": "exchange"},
                    reply_timeout_ms=timings.exchange_timeout_ms,
                )
            except (RpcError, LocateError):
                continue
            newgroup.add(peer)
            seqnos[peer] = reply["seqno"]
            mourned |= set(reply["mourned"])
            if reply.get("operational"):
                operational_peers.add(peer)
        last_set = set(cfg.server_addresses) - mourned
        proceed = last_set <= newgroup
        if override:
            # §3.1's administrator escape: the operator asserts that
            # the missing servers' data is gone for good.
            proceed = True
        if not proceed and cfg.improved_recovery_rule and server.stayed_up:
            # §3.2: we stayed up the whole time; while the group lacked
            # a majority nobody performed updates, so if our sequence
            # number is the highest we cannot be missing anything.
            if seqnos[server.me] >= max(seqnos.values()):
                proceed = True
                used_improved_rule = True
        if not proceed:
            # Wait for members of the last set to come back, then retry.
            yield sim.sleep(
                rng.uniform(timings.backoff_min_ms, timings.backoff_max_ms)
            )
            continue

        # -- Phase 4: state transfer from the freshest member -----------
        donor = max(seqnos, key=lambda a: (seqnos[a], str(a)))
        info = member.info()
        # A fresh join re-bases our delivery horizon at the
        # sequencer's floor: joining at a non-genesis base leaves a
        # *blind span* of the group's history this kernel will never
        # see delivered. Likewise, state applied before the join may
        # belong to a stream the rejoined kernel no longer vouches
        # for (after a group re-formation the numbers can even line
        # up while naming different records). Either way, neither our
        # own image nor a recovering peer's can certify the current
        # stream — only an operational member can: it is applying the
        # live instance, and get_state makes it wait until it has
        # applied our committed horizon, so redirecting to it cannot
        # lose updates.
        blind_join = joined_fresh and info.taken > -1
        stream_suspect = server._state_loaded and (
            joined_fresh or info.taken > server._applied_kernel
        )
        if blind_join or stream_suspect:
            candidates = operational_peers & set(seqnos)
            if candidates:
                if donor not in candidates:
                    donor = max(candidates, key=lambda a: (seqnos[a], str(a)))
            elif blind_join or info.taken > server._applied_kernel:
                # Records exist that nobody reachable can vouch for:
                # back off and retry until a member that holds them
                # finishes its own recovery and turns operational.
                yield sim.sleep(
                    rng.uniform(timings.backoff_min_ms, timings.backoff_max_ms)
                )
                continue
            # else: fresh join at the group's genesis with no
            # operational member anywhere — the whole group is
            # re-forming and redelivery from the base covers the
            # stream; proceed from the freshest image (the paper's
            # re-formation case: state comes from the best disk).
        trace_phase("transfer", donor=str(donor),
                    improved_rule=used_improved_rule)
        transferred = 0
        applied_kernel = member.info().taken
        if donor == server.me:
            if not server._state_loaded:
                yield from server.rebuild_state_from_disk()
        else:
            try:
                reply = yield from server.rpc_client.trans(
                    cfg.recovery_port_of(donor),
                    {"op": "get_state", "min_kernel": member.info().committed},
                    reply_timeout_ms=timings.transfer_timeout_ms,
                )
            except (RpcError, LocateError, ServiceDown):
                # ServiceDown: the donor's own group failed while it
                # served the transfer — retry the round like any other
                # transfer failure.
                yield sim.sleep(
                    rng.uniform(timings.backoff_min_ms, timings.backoff_max_ms)
                )
                continue
            # Installing mixes old and new directories on our disk:
            # mark the commit block so a crash here is detected at the
            # next boot (the paper's recovering flag).
            server._installing = True
            try:
                yield from server.admin.write_commit_block(recovering=True)
                transferred = yield from _install_snapshot(server, reply)
            finally:
                server._installing = False
            if reply.get("operational"):
                # The donor applied the live instance's stream, so its
                # horizon is in our numbering: fast-forward past the
                # history its snapshot already covers.
                applied_kernel = max(applied_kernel, reply["applied_kernel"])
                member.kernel.taken = max(member.kernel.taken, applied_kernel)
            # A recovering donor's horizon may refer to an earlier
            # instance; leave our delivery base alone and let
            # redelivery (session-deduplicated) close the overlap.

        # -- Seal: final commit block, back to normal operation ---------
        yield from server.admin.write_commit_block(
            config_vector=server.config_vector(),
            recovering=False,
            seqno=max(server.admin.commit.seqno, server.state.update_seqno),
            next_object=server.state.next_object,
        )
        # Everything quarantined at boot has been rewritten (by the
        # donor transfer, or from our own rebuilt image when we were
        # the freshest copy): the disk certifies completeness again.
        server.admin.clear_quarantine()
        return RecoveryOutcome(
            rounds=rounds,
            donor=donor,
            transferred_dirs=transferred,
            applied_kernel=applied_kernel,
            duration_ms=sim.now - started,
            used_improved_rule=used_improved_rule,
        )
    raise GroupResetFailed(
        f"server {server.index} gave up recovery after {rounds} rounds"
    )


def _leave_quietly(server):
    """Abandon the current (minority) group and go idle."""
    kernel = server.member.kernel
    if kernel.state == STATE_MEMBER:
        kernel.announce_leave()
        yield server.sim.sleep(10.0)
    kernel.state = STATE_IDLE


def _install_snapshot(server, reply):
    """Adopt a donor's snapshot; bring our disk up to date.

    Only directories whose entry sequence number differs from the
    donor's are rewritten (a mostly-current server transfers little).
    Returns the number of directories written.
    """
    cfg = server.config
    snapshot = reply["snapshot"]
    entry_seqnos = reply["entry_seqnos"]
    new_state = DirectoryState.from_snapshot(cfg.port, snapshot)
    transferred = 0
    for obj in sorted(new_state.directories):
        donor_seq = entry_seqnos.get(obj)
        if donor_seq is None:
            continue  # e.g. the never-modified bootstrap root
        mine = server.admin.entries.get(obj)
        if mine is not None and mine[1] == donor_seq:
            continue  # our copy is already current
        data = new_state.directories[obj].to_bytes()
        old_cap = mine[0] if mine is not None else None
        new_cap = yield from server.bullet.create(data)
        yield from server.admin.store_entry(
            obj, new_cap, donor_seq, new_state.checks[obj]
        )
        if old_cap is not None:
            server._remove_bullet_file_later(old_cap)
        transferred += 1
    for obj in list(server.admin.entries):
        if obj not in new_state.directories:
            old_cap = server.admin.entries[obj][0]
            yield from server.admin.remove_entry(
                obj, new_state.update_seqno, new_state.next_object
            )
            server._remove_bullet_file_later(old_cap)
    # The session table rides the snapshot; persist the donor's
    # entries so exactly-once survives a crash right after recovery.
    for client_id, entry in new_state.sessions.items():
        mine = server.admin.session_entries.get(client_id)
        if mine is not None and mine.last_seqno == entry.last_seqno:
            continue
        yield from server.admin.store_session(client_id, entry)
    server._adopt_state(new_state)
    return transferred
