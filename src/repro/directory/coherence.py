"""Server half of client cache coherence (docs/PROTOCOL.md).

Each replica runs one :class:`CoherenceManager`. The protocol in one
paragraph: a replica grants a *read lease* to each client it answers a
:class:`~repro.directory.operations.CoherentLookup` for, remembering
the client address until the lease expires. Because every replica
applies every write in the same total order (the sequencer stream),
each replica can invalidate *its own* leased clients as it applies:
on apply it pushes a ``cache.inval`` record — the write's update
seqno plus the ``(object, name)`` keys it dirties — to every leased
client, and tracks the outstanding acknowledgements. A replica's
**clean seqno** is the highest update seqno such that every
invalidation at or below it has been acknowledged (or the lease of
the unresponsive client has expired). Replicas exchange clean seqnos
(``cache.clean``, pushed eagerly on advance and re-sent every
``cache_clean_exchange_ms`` in case of loss), and the initiator of a
write holds the client's reply until every replica in the current
view reports clean ≥ the write's seqno — the *write barrier*.

Why this is linearizable: a cached entry can only serve a stale value
for a write W during the window between W's apply and the eviction
ack — and in that window W's reply is still held by the barrier, so W
has not completed and the stale read legally linearizes before it.
Once W's initiator replies, every lease-holding client has evicted.

View changes: a replica that drops out of the view can no longer
invalidate its leased clients, and its clean seqno leaves the
barrier. Writes are therefore *fenced* for ``cache_lease_ms +
cache_fence_slack_ms`` after a membership loss is observed — by then
every lease the departed replica could have granted has expired (the
slack covers failure-detection lag, the same residual window as the
paper's §3.1 minority-read argument; clients recompute expiry from
their request's *send* time, so a client never believes its lease
outlives the server's grant).
"""

from __future__ import annotations

from repro.errors import NoMajority

#: Transport frame kinds (all unicast, outside the RPC state machine).
KIND_INVAL = "cache.inval"
KIND_INVACK = "cache.invack"
KIND_CLEAN = "cache.clean"

#: Poll interval of the write barrier (simulated ms). Acks and clean
#: exchanges arrive as ordinary frames; the barrier just re-checks.
BARRIER_POLL_MS = 1.0


class CoherenceManager:
    """Leases, invalidations and the write barrier for one replica."""

    def __init__(self, server):
        self.server = server
        self.sim = server.sim
        self.config = server.config
        self.transport = server.transport
        #: client address -> lease expiry (simulated ms).
        self.leases: dict = {}
        #: update seqno -> client addresses that have not acked yet.
        self.pending: dict[int, set] = {}
        #: peer server address -> last clean seqno it reported.
        self.peer_clean: dict = {}
        #: Writes may not complete before this time (view-change fence).
        self.fence_until = 0.0
        self._last_members: frozenset | None = None
        self._clean_sent = -1
        registry = self.sim.obs.registry
        node = str(server.me)
        self._obs = self.sim.obs
        self._g_leases = registry.gauge(node, "cache.leases")
        self._c_invals = registry.counter(node, "cache.invals_sent")
        self._c_acks = registry.counter(node, "cache.inval_acks")
        self._c_lease_expiries = registry.counter(node, "cache.lease_expiries")
        self._c_fences = registry.counter(node, "cache.fences")
        self._h_barrier = registry.histogram(node, "cache.write_barrier_ms")
        self.transport.register(KIND_INVACK, self._on_invack)
        self.transport.register(KIND_CLEAN, self._on_clean)

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------

    def grant_lease(self, client) -> float:
        """Grant/renew *client*'s read lease; returns its duration."""
        self.leases[client] = self.sim.now + self.config.cache_lease_ms
        self._g_leases.set(len(self.leases))
        return self.config.cache_lease_ms

    def _expire_leases(self) -> None:
        now = self.sim.now
        expired = [c for c, expiry in self.leases.items() if expiry <= now]
        if not expired:
            return
        for client in expired:
            del self.leases[client]
        self._c_lease_expiries.inc(len(expired))
        self._g_leases.set(len(self.leases))
        # An expired lease counts as acknowledged: the client's own
        # clock (measured from its request send time, which cannot be
        # later than our grant) has already forced it to stop serving
        # from cache.
        doomed = []
        for seqno, waiting in self.pending.items():
            waiting.difference_update(expired)
            if not waiting:
                doomed.append(seqno)
        for seqno in doomed:
            del self.pending[seqno]
        if doomed:
            self._push_clean()

    # ------------------------------------------------------------------
    # invalidation (called by the group thread at each apply)
    # ------------------------------------------------------------------

    def note_apply(self, useqno: int, keys, lineage=None) -> None:
        """A write with update seqno *useqno* just applied locally.

        Push its invalidation record to every leased client and track
        the outstanding acks. With no keys (reads never get here;
        CreateDir and deterministic failures dirty nothing) or no
        leases, the apply is immediately clean.
        """
        if keys:
            self._expire_leases()
            if self.leases:
                payload = {
                    "server": self.server.me,
                    "seqno": useqno,
                    "keys": list(keys),
                }
                size = 64 + 24 * len(keys)
                for client in self.leases:
                    self.transport.send(client, KIND_INVAL, payload, size)
                self.pending[useqno] = set(self.leases)
                self._c_invals.inc(len(self.leases))
                if self._obs.tracer.enabled:
                    self._obs.tracer.emit(
                        str(self.server.me), "cache", "cache.inval.send",
                        lineage=lineage, seqno=useqno,
                        keys=len(keys), clients=len(self.leases),
                    )
                return
        # Nothing outstanding for this seqno: the clean horizon may
        # have advanced, so let the peers know without waiting for the
        # periodic exchange.
        self._push_clean()

    def clean_seqno(self) -> int:
        """Highest update seqno with no outstanding invalidations."""
        if self.pending:
            return min(self.pending) - 1
        return self.server.state.update_seqno

    # ------------------------------------------------------------------
    # frame handlers (sync callbacks on the transport pump)
    # ------------------------------------------------------------------

    def _on_invack(self, packet) -> None:
        if not self.server.alive:
            return
        payload = packet.payload
        seqno = payload["seqno"]
        self._c_acks.inc()
        waiting = self.pending.get(seqno)
        if waiting is None:
            return
        waiting.discard(payload["client"])
        if not waiting:
            del self.pending[seqno]
            self._push_clean()

    def _on_clean(self, packet) -> None:
        if not self.server.alive:
            return
        payload = packet.payload
        previous = self.peer_clean.get(payload["server"], -1)
        if payload["seqno"] > previous:
            self.peer_clean[payload["server"]] = payload["seqno"]

    def _push_clean(self, force: bool = False) -> None:
        clean = self.clean_seqno()
        if not force and clean == self._clean_sent:
            return
        self._clean_sent = clean
        payload = {"server": self.server.me, "seqno": clean}
        for address in self.config.server_addresses:
            if address != self.server.me:
                self.transport.send(address, KIND_CLEAN, payload, 64)

    # ------------------------------------------------------------------
    # the write barrier
    # ------------------------------------------------------------------

    def observe_view(self) -> None:
        """Fence writes when a replica leaves the current view."""
        if not self.server.member.is_member:
            return
        view = self.server.member.info().view
        members = frozenset(
            a for a in self.config.server_addresses if a in view
        )
        if self._last_members is not None:
            departed = self._last_members - members
            if departed:
                fence = (
                    self.sim.now
                    + self.config.cache_lease_ms
                    + self.config.cache_fence_slack_ms
                )
                if fence > self.fence_until:
                    self.fence_until = fence
                    self._c_fences.inc()
                    if self._obs.tracer.enabled:
                        self._obs.tracer.emit(
                            str(self.server.me), "cache", "cache.fence",
                            lineage=("life", str(self.server.me)),
                            departed=[str(a) for a in sorted(departed, key=str)],
                            until=round(fence, 3),
                        )
                # The departed replica's clean report is stale the
                # moment it leaves; drop it so a rejoin starts fresh.
                for address in departed:
                    self.peer_clean.pop(address, None)
        self._last_members = members

    def _barrier_seqno(self) -> int:
        """min(own clean, every view peer's reported clean)."""
        view = self.server.member.info().view
        clean = self.clean_seqno()
        for address in self.config.server_addresses:
            if address == self.server.me or address not in view:
                continue
            peer = self.peer_clean.get(address, -1)
            if peer < clean:
                clean = peer
        return clean

    def wait_clean(self, target: int):
        """Hold a write's reply until the barrier covers *target*.

        ``yield from`` from the initiator's server thread. Returns
        normally once every replica in the current view has reported
        clean ≥ *target* and no view-change fence is active; raises
        :class:`NoMajority` if the service loses its majority while
        waiting (the client retries, exactly like a mid-write reset).
        """
        started = self.sim.now
        while True:
            self._expire_leases()
            self.observe_view()
            if self.sim.now >= self.fence_until and self._barrier_seqno() >= target:
                self._h_barrier.observe(self.sim.now - started)
                return
            if not self.server.alive or not self.server.has_majority():
                raise NoMajority(
                    "majority lost while write waited on the cache barrier"
                )
            yield self.sim.sleep(BARRIER_POLL_MS)

    # ------------------------------------------------------------------
    # housekeeping sweep
    # ------------------------------------------------------------------

    def sweeper(self):
        """Periodic lease expiry + clean re-broadcast (loss repair)."""
        interval = self.config.cache_clean_exchange_ms
        while self.server.alive:
            yield self.sim.sleep(interval)
            if not self.server.operational:
                continue
            self._expire_leases()
            self.observe_view()
            self._push_clean(force=True)
