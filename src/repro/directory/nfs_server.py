"""A SunOS/NFS-like single-copy baseline.

The paper compares its fault-tolerant implementations against plain
Sun NFS on SunOS 4.1.1 (files under /usr/tmp): one server, one copy,
no fault tolerance, no consistency guarantees for remote caches. We
reproduce only what the comparison needs — the measured *cost
structure* of NFS directory updates and lookups (a synchronous
server-side update around 41 ms; lookups slightly slower than
Amoeba's) plus a small file service for the tmp-file experiment.
"""

from __future__ import annotations

import dataclasses

from repro.amoeba.capability import Port, new_check
from repro.directory.config import ServiceConfig
from repro.directory.operations import CreateDir, DirectoryOp, SessionOp
from repro.directory.state import DirectoryState
from repro.errors import CapabilityError, DirectoryError, Interrupted, NoSuchFile, ServiceDown
from repro.rpc.server import RpcServer
from repro.rpc.transport import Transport
from repro.sim.primitives import Mutex


class NfsDirectoryServer:
    """One unreplicated directory server with NFS-calibrated costs."""

    def __init__(self, config: ServiceConfig, transport: Transport):
        self.config = config
        self.transport = transport
        self.sim = transport.sim
        self.state = DirectoryState(config.port, config.root_check)
        self.state.session_cache_size = config.session_cache_size
        self.state.dedup_enabled = config.dedup_enabled
        self.rpc_server = RpcServer(transport, config.port, "nfsdir")
        # NFS updates are synchronous on the server's single disk.
        self._disk = Mutex("nfsdir.disk")
        self.operational = True
        self.alive = True
        self._processes = [
            self.sim.spawn(self._server_thread(), f"nfsdir.srv{t}")
            for t in range(config.server_threads)
        ]
        self.reads_served = 0
        self.writes_served = 0
        self._obs = self.sim.obs
        registry = self.sim.obs.registry
        node = str(transport.address)
        self._c_reads = registry.counter(node, "dir.reads")
        self._c_writes = registry.counter(node, "dir.writes")

    def crash(self) -> None:
        """No fault tolerance: a crash simply stops the service."""
        self.alive = False
        self.operational = False
        for process in self._processes:
            process.kill("nfsdir crash")
        self._processes = []

    def _server_thread(self):
        latency = self.transport.nic.network.latency.cpu
        while self.alive:
            try:
                op, handle = yield self.rpc_server.getreq()
            except Interrupted:
                return
            try:
                if op.is_read:
                    yield from self.transport.cpu.use(latency.nfs_read_processing_ms)
                    try:
                        result = self.state.query(op)
                    except (DirectoryError, CapabilityError) as exc:
                        handle.error(exc)
                        continue
                    self.reads_served += 1
                    self._c_reads.inc()
                    handle.reply(result, size=96)
                else:
                    op = self._prepare(op)
                    yield from self._disk.acquire_gen()
                    try:
                        yield self.sim.sleep(latency.nfs_update_ms)
                        try:
                            result, _ = self.state.apply(op)
                        except (DirectoryError, CapabilityError) as exc:
                            handle.error(exc)
                            continue
                    finally:
                        self._disk.release()
                    self.writes_served += 1
                    self._c_writes.inc()
                    if isinstance(result, Exception):
                        # Failed session op: the cached-reply error.
                        handle.error(result)
                    else:
                        handle.reply(result, size=96)
            except Interrupted:
                raise
            except Exception as exc:
                handle.error(ServiceDown(f"internal error: {exc!r}"))

    def _prepare(self, op: DirectoryOp) -> DirectoryOp:
        if isinstance(op, SessionOp):
            inner = self._prepare(op.op)
            if inner is not op.op:
                return dataclasses.replace(op, op=inner)
            return op
        if isinstance(op, CreateDir) and op.check is None:
            rng = self.sim.rng.stream(f"nfsdir.{self.config.name}.check")
            return dataclasses.replace(op, check=new_check(rng))
        return op


class NfsFileServer:
    """Minimal /usr/tmp-style file service for the tmp-file test."""

    def __init__(self, transport: Transport, instance: str = "nfsfile"):
        self.transport = transport
        self.sim = transport.sim
        self.port = Port.for_service(f"nfs.file.{instance}")
        self.rpc_server = RpcServer(transport, self.port, instance)
        self._files: dict[int, bytes] = {}
        self._next = 1
        self.alive = True
        self._processes = [
            self.sim.spawn(self._serve(), f"{instance}.t{i}") for i in range(3)
        ]

    def crash(self) -> None:
        self.alive = False
        for process in self._processes:
            process.kill("nfsfile crash")
        self._processes = []

    def _serve(self):
        latency = self.transport.nic.network.latency.cpu
        while self.alive:
            try:
                request, handle = yield self.rpc_server.getreq()
            except Interrupted:
                return
            kind = request["op"]
            if kind == "create":
                yield self.sim.sleep(latency.nfs_file_create_ms)
                handle_id = self._next
                self._next += 1
                self._files[handle_id] = request["data"]
                handle.reply(handle_id)
            elif kind == "read":
                yield self.sim.sleep(latency.nfs_file_read_ms)
                data = self._files.get(request["handle"])
                if data is None:
                    handle.error(NoSuchFile(f"no file {request['handle']}"))
                else:
                    handle.reply(data, size=48 + len(data))
            elif kind == "delete":
                yield self.sim.sleep(latency.nfs_file_read_ms)
                self._files.pop(request["handle"], None)
                handle.reply(True)
            else:
                handle.error(NoSuchFile(f"unknown op {kind!r}"))


class NfsFileClient:
    """Client wrapper matching BulletClient's little API."""

    def __init__(self, rpc, port: Port):
        self.rpc = rpc
        self.port = port

    def create(self, data: bytes):
        handle = yield from self.rpc.trans(
            self.port, {"op": "create", "data": bytes(data)}, size=64 + len(data)
        )
        return handle

    def read(self, handle):
        data = yield from self.rpc.trans(
            self.port, {"op": "read", "handle": handle}, size=64
        )
        return data

    def delete(self, handle):
        result = yield from self.rpc.trans(
            self.port, {"op": "delete", "handle": handle}, size=64
        )
        return result
