"""Deployment-wide configuration of a directory service."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.amoeba.capability import Port
from repro.group.timings import GroupTimings


@dataclass
class RecoveryTimings:
    """Timeouts of the Fig. 6 recovery protocol (simulated ms)."""

    #: Poll interval while waiting for a majority to assemble.
    poll_ms: float = 20.0
    #: How long to wait for a majority before leaving and retrying.
    majority_wait_ms: float = 400.0
    #: Backoff bounds between recovery attempts.
    backoff_min_ms: float = 40.0
    backoff_max_ms: float = 120.0
    #: RPC timeout for the mourned-set/seqno exchange.
    exchange_timeout_ms: float = 200.0
    #: RPC timeout for the state transfer (snapshots can be big).
    transfer_timeout_ms: float = 30_000.0
    #: Give up after this many recovery rounds (None = keep trying).
    max_rounds: int | None = None


@dataclass
class ServiceConfig:
    """Static facts every server of one directory service shares."""

    #: Deployment name; determines the public port.
    name: str
    #: Machine addresses of the directory servers, by server index.
    server_addresses: tuple
    #: Root-directory owner check (shared so every replica mints the
    #: same root capability without communication).
    root_check: int = 0x00C0FFEE
    #: Resilience degree for SendToGroup (the paper uses r = 2).
    resilience: int = 2
    #: Listening threads per server (bounds concurrent requests; when
    #: all are busy the kernel answers NOTHERE and clients fail over).
    #: One thread reproduces the paper's measured contention behaviour
    #: (Fig. 8's below-ideal saturation); see bench E6b for the effect
    #: of more threads.
    server_threads: int = 1
    group_timings: GroupTimings = field(default_factory=GroupTimings)
    recovery: RecoveryTimings = field(default_factory=RecoveryTimings)
    #: Group-commit batching: after a blocking ReceiveFromGroup, the
    #: group thread drains up to this many deliverable records in one
    #: batch and coalesces their object-table/commit-block updates into
    #: a single disk flush (Fig. 9's rising-throughput lever). 1
    #: disables batching and is bit-for-bit the classic one-record
    #: apply/persist loop.
    batch_max: int = 16
    #: Use the paper's §3.2 improved recovery rule (a server that never
    #: crashed may pair with a restarted stale server).
    improved_recovery_rule: bool = True
    #: Exactly-once session table bound: at most this many clients'
    #: (last seqno, cached reply) entries are kept, LRU-evicted. Must
    #: not exceed ``session_blocks`` or persisted entries could lag
    #: the replicated table.
    session_cache_size: int = 32
    #: Admin-partition blocks reserved (at the top of the partition)
    #: for persisted session records.
    session_blocks: int = 64
    #: When False, duplicate session operations re-execute — only the
    #: chaos suite's non-vacuity runs ever turn this off.
    dedup_enabled: bool = True
    #: Client cache coherence (docs/PROTOCOL.md "Client cache
    #: coherence"). Off by default: servers answer plain ``LookupSet``
    #: exactly as before and the wire behaviour is byte-identical to a
    #: deployment without this feature. When on, servers grant read
    #: leases on ``CoherentLookup`` replies, push invalidation records
    #: to leased clients as writes apply, and hold each write's reply
    #: until every replica's leased clients have acknowledged the
    #: invalidations for it (the write barrier that makes cached reads
    #: linearizable).
    cache_coherence: bool = False
    #: How long a client may serve lookups from its cache after the
    #: last coherent reply it received (simulated ms). Bounds how long
    #: a write can stall on a crashed/vanished client or replica.
    cache_lease_ms: float = 2_000.0
    #: Period of the coherence housekeeping sweep: lease expiry and
    #: clean-seqno exchange between replicas (simulated ms).
    cache_clean_exchange_ms: float = 50.0
    #: Extra margin added to the view-change write fence beyond
    #: ``cache_lease_ms``, covering the failure-detection lag during
    #: which a replica outside the new view may still have been
    #: granting leases (same residual window as the paper's §3.1
    #: minority-read argument).
    cache_fence_slack_ms: float = 500.0
    #: Storage integrity (docs/PROTOCOL.md "Storage integrity"). Off by
    #: default: blocks are stored raw and the on-disk layout stays
    #: byte-identical to the paper-era code for the Fig. 7/9
    #: experiments. When on, every persisted block/record is wrapped in
    #: a self-identifying checksummed envelope, reads of damaged data
    #: fail loudly as ``CorruptBlock``, corrupt replicas quarantine the
    #: affected objects and re-fetch them from an operational peer, and
    #: each server runs a background scrubber that audits its admin
    #: partition and Bullet extents against the live RAM state.
    integrity: bool = False
    #: Period of the background scrub pass (simulated ms; only runs
    #: when ``integrity`` is on, 0 disables the scrubber entirely).
    scrub_interval_ms: float = 1_000.0

    @property
    def port(self) -> Port:
        """The public service port clients locate."""
        return Port.for_service(f"dir.{self.name}")

    @property
    def n_servers(self) -> int:
        return len(self.server_addresses)

    @property
    def majority(self) -> int:
        return self.n_servers // 2 + 1

    def recovery_port(self, index: int) -> Port:
        """The private per-server port for recovery exchanges (static
        deployments that never change shape, e.g. the two-server RPC
        design)."""
        return Port.for_service(f"dir.{self.name}.recovery.{index}")

    def recovery_port_of(self, address) -> Port:
        """Recovery-exchange port of one server, keyed by *address*.

        Elastic deployments resolve recovery peers this way: index
        positions shift when a replica is evicted or added at runtime,
        but an address names the same machine for its whole life.
        """
        return Port.for_service(f"dir.{self.name}.recovery.addr.{address}")

    def index_of(self, address) -> int:
        return self.server_addresses.index(address)
