"""Client-side lookup cache (the read-path scale-out of ROADMAP.md).

A :class:`LookupCache` is a bounded LRU mapping ``(directory object
number, rights, name)`` to the lookup result last returned by a
coherent read. Rights are part of the key because a capability's
column mask changes which capability a lookup sees — two clients (or
one client holding two capabilities) looking up the same row through
different masks can legitimately cache different answers.

The cache stores *values*, not hits: ``None`` ("no such row") is a
perfectly cacheable answer, so entries use a private ``_MISS``
sentinel to distinguish "not cached" from "cached None".

Coherence itself — leases, epochs, invalidation acknowledgements —
lives in :mod:`repro.directory.client` (client half) and
:mod:`repro.directory.coherence` (server half); this module is just
the data structure plus its observability counters (cache.hits /
cache.misses / cache.fills / cache.invalidations / cache.flushes,
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from collections import OrderedDict

#: Returned by :meth:`LookupCache.get` when the key is absent.
MISS = object()


class LookupCache:
    """Bounded LRU of lookup answers with per-object invalidation."""

    def __init__(self, capacity: int, registry=None, node: str = ""):
        if capacity <= 0:
            raise ValueError("LookupCache needs a positive capacity")
        self.capacity = capacity
        # key -> (value, server) where *server* is the replica whose
        # lease covers the entry (an entry is only servable while that
        # replica's lease is current — see DirectoryClient).
        self._entries: OrderedDict = OrderedDict()
        if registry is not None:
            self._c_hits = registry.counter(node, "cache.hits")
            self._c_misses = registry.counter(node, "cache.misses")
            self._c_fills = registry.counter(node, "cache.fills")
            self._c_invalidations = registry.counter(node, "cache.invalidations")
            self._c_flushes = registry.counter(node, "cache.flushes")
        else:  # pragma: no cover - unit-test convenience
            self._c_hits = self._c_misses = self._c_fills = None
            self._c_invalidations = self._c_flushes = None

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """``(value, server)`` for *key*, or :data:`MISS`.

        A hit refreshes the entry's LRU position. Counters are *not*
        bumped here — a multi-name lookup is one logical hit or miss,
        so the client accounts at that granularity via
        :meth:`count_hit` / :meth:`count_miss`.
        """
        entry = self._entries.get(key, MISS)
        if entry is not MISS:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value, server) -> None:
        """Fill (or refresh) one entry, evicting the LRU tail."""
        self._entries[key] = (value, server)
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        if self._c_fills is not None:
            self._c_fills.inc()

    def count_hit(self) -> None:
        if self._c_hits is not None:
            self._c_hits.inc()

    def count_miss(self) -> None:
        if self._c_misses is not None:
            self._c_misses.inc()

    def invalidate(self, object_number: int, name) -> int:
        """Drop entries matching an invalidation record.

        ``(obj, name)`` drops that row under every rights mask;
        ``(obj, None)`` drops every entry of the directory. Returns
        the number of entries dropped.
        """
        if name is None:
            doomed = [k for k in self._entries if k[0] == object_number]
        else:
            doomed = [
                k
                for k in self._entries
                if k[0] == object_number and k[2] == name
            ]
        for key in doomed:
            del self._entries[key]
        if doomed and self._c_invalidations is not None:
            self._c_invalidations.inc(len(doomed))
        return len(doomed)

    def drop(self, key) -> None:
        """Drop one entry (e.g. its replica's lease expired)."""
        self._entries.pop(key, None)

    def flush(self) -> int:
        """Drop everything (lease lapse, connection loss). Returns the
        number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped and self._c_flushes is not None:
            self._c_flushes.inc()
        return dropped
