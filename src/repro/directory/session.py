"""Per-client session state for exactly-once directory updates.

The Amoeba RPC layer gives at-most-once delivery to *one* server, but
a fault-tolerant service has many: a client whose reply was lost fails
over and retries, and without extra machinery the retried update is
applied twice. The standard cure (LLFT-style) is replicated per-client
session state: every mutating operation carries a ``(client_id,
session_seqno)`` stamp, and each replica keeps a bounded table mapping
client id to the last sequence number it executed plus the cached
reply. A duplicate is answered from the cache instead of re-executed.

The session table is part of the replicated state machine
(:class:`~repro.directory.state.DirectoryState`), so it rides the
total order, the recovery snapshot, and — via the byte encodings in
this module — the on-disk object table and the NVRAM log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import errors
from repro.amoeba.capability import Capability
from repro.errors import CapabilityError, DirectoryError


@dataclass
class SessionEntry:
    """What a replica remembers about one client's session."""

    #: Highest session sequence number executed for this client.
    last_seqno: int
    #: The reply that acknowledged ``last_seqno`` (replayed verbatim
    #: when the client retries it).
    reply: object
    #: Logical recency (the state's ``update_seqno`` at record time);
    #: the LRU eviction key of the bounded session table.
    last_active: int


# ----------------------------------------------------------------------
# reply encoding
# ----------------------------------------------------------------------
#
# Cached replies must be byte-encodable: they are persisted in the
# object table, compared in replica fingerprints (exception *instances*
# never compare equal, their encodings do), and shipped in recovery
# snapshots. Directory write results are a closed set: True/False,
# None, a Capability (CreateDir), or a deterministic apply error
# (AlreadyExists, NotFound, ...). Errors MUST be cached: an executed-
# but-failed operation is still executed, and a delayed duplicate that
# re-ran it later — when the very same operation might succeed — would
# commit an update the client was already told had failed.


def encode_reply(reply) -> bytes:
    if reply is None:
        return b"N"
    if reply is True:
        return b"T"
    if reply is False:
        return b"F"
    if isinstance(reply, Capability):
        return b"C" + reply.to_bytes()
    if isinstance(reply, (DirectoryError, CapabilityError)):
        return b"E" + type(reply).__name__.encode("ascii") + b"\x00" + str(
            reply
        ).encode("utf-8")
    raise DirectoryError(f"uncacheable reply type {type(reply).__name__}")


def decode_reply(raw: bytes):
    tag, body = raw[:1], raw[1:]
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"C":
        return Capability.from_bytes(body)
    if tag == b"E":
        name, _, message = body.partition(b"\x00")
        cls = getattr(errors, name.decode("ascii"), None)
        if not isinstance(cls, type) or not issubclass(
            cls, (DirectoryError, CapabilityError)
        ):
            cls = DirectoryError
        return cls(message.decode("utf-8"))
    raise DirectoryError(f"corrupt cached reply {raw!r}")


# ----------------------------------------------------------------------
# disk encoding (one session record per admin-partition block)
# ----------------------------------------------------------------------

SESSION_MAGIC = b"SESS"


def encode_session_record(client_id: str, entry: SessionEntry) -> bytes:
    """One client's session entry as a <=1024-byte disk block image."""
    cid = client_id.encode("utf-8")
    reply = encode_reply(entry.reply)
    raw = (
        SESSION_MAGIC
        + len(cid).to_bytes(2, "big")
        + cid
        + entry.last_seqno.to_bytes(8, "big")
        + entry.last_active.to_bytes(8, "big")
        + len(reply).to_bytes(2, "big")
        + reply
    )
    if len(raw) > 1024:
        raise DirectoryError(f"session record for {client_id!r} exceeds a block")
    return raw


def decode_session_record(raw: bytes):
    """Inverse of :func:`encode_session_record`; None when not a
    session block (free or holding something else)."""
    if raw[:4] != SESSION_MAGIC:
        return None
    cid_len = int.from_bytes(raw[4:6], "big")
    offset = 6 + cid_len
    client_id = raw[6:offset].decode("utf-8")
    last_seqno = int.from_bytes(raw[offset : offset + 8], "big")
    last_active = int.from_bytes(raw[offset + 8 : offset + 16], "big")
    reply_len = int.from_bytes(raw[offset + 16 : offset + 18], "big")
    reply = decode_reply(raw[offset + 18 : offset + 18 + reply_len])
    return client_id, SessionEntry(last_seqno, reply, last_active)
