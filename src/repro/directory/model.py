"""The directory data model.

A directory in Amoeba is a table: one row per name, one column per
protection domain (e.g. owner / group / other). Each cell holds a
capability — typically the same object with progressively restricted
rights across the columns. A capability *for a directory* carries a
column mask in its low rights bits, so handing out a third-column
capability gives access to only the third column's entries (section 2
of the paper).

Directories serialize to bytes for storage in Bullet files; the
serialization is deterministic so that every replica produces an
identical file for the same logical state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amoeba.capability import Capability
from repro.errors import AlreadyExists, DirectoryError, NotFound

#: Most directories use three protection columns, as in the paper.
DEFAULT_COLUMNS = ("owner", "group", "other")

MAX_COLUMNS = 4  # the capability rights field has four column bits


@dataclass
class DirRow:
    """One (name, capability-per-column) row."""

    name: str
    capabilities: tuple  # Capability | None, one slot per column

    def masked(self, column_mask: int) -> "DirRow":
        """The row as visible through a capability's column mask."""
        visible = tuple(
            cap if column_mask & (1 << i) else None
            for i, cap in enumerate(self.capabilities)
        )
        return DirRow(self.name, visible)


class Directory:
    """One directory: ordered rows keyed by name."""

    def __init__(self, columns=DEFAULT_COLUMNS):
        columns = tuple(columns)
        if not 1 <= len(columns) <= MAX_COLUMNS:
            raise DirectoryError(
                f"directories have 1..{MAX_COLUMNS} columns, got {len(columns)}"
            )
        self.columns = columns
        self._rows: dict[str, DirRow] = {}

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, name: str) -> bool:
        return name in self._rows

    @property
    def empty(self) -> bool:
        return not self._rows

    def row(self, name: str) -> DirRow:
        """The named row; raises NotFound."""
        try:
            return self._rows[name]
        except KeyError:
            raise NotFound(f"no row {name!r}") from None

    def rows(self) -> list[DirRow]:
        """All rows in insertion order."""
        return list(self._rows.values())

    def names(self) -> list[str]:
        """All row names in insertion order."""
        return list(self._rows)

    def listing(self, column_mask: int) -> list[DirRow]:
        """All rows masked to the visible columns."""
        return [row.masked(column_mask) for row in self._rows.values()]

    def lookup(self, name: str, column_mask: int) -> Capability | None:
        """First visible capability of the named row (leftmost column)."""
        row = self.row(name).masked(column_mask)
        for cap in row.capabilities:
            if cap is not None:
                return cap
        return None

    # -- mutation ----------------------------------------------------------

    def _normalize(self, capabilities) -> tuple:
        caps = tuple(capabilities)
        if len(caps) > len(self.columns):
            raise DirectoryError(
                f"{len(caps)} capabilities for {len(self.columns)} columns"
            )
        return caps + (None,) * (len(self.columns) - len(caps))

    def append_row(self, name: str, capabilities) -> None:
        """Add a new row; raises AlreadyExists on a duplicate name."""
        if name in self._rows:
            raise AlreadyExists(f"row {name!r} already exists")
        self._rows[name] = DirRow(name, self._normalize(capabilities))

    def replace_row(self, name: str, capabilities) -> None:
        """Replace the capabilities of an existing row."""
        if name not in self._rows:
            raise NotFound(f"no row {name!r}")
        self._rows[name] = DirRow(name, self._normalize(capabilities))

    def chmod_row(self, name: str, column_mask: int, capabilities) -> None:
        """Change protection: replace only the masked columns' cells."""
        existing = self.row(name)
        new_caps = self._normalize(capabilities)
        merged = tuple(
            new_caps[i] if column_mask & (1 << i) else existing.capabilities[i]
            for i in range(len(self.columns))
        )
        self._rows[name] = DirRow(name, merged)

    def delete_row(self, name: str) -> None:
        """Remove a row; raises NotFound."""
        if name not in self._rows:
            raise NotFound(f"no row {name!r}")
        del self._rows[name]

    # -- serialization ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Deterministic, length-prefixed encoding for Bullet storage."""
        header = ("|".join(self.columns)).encode()
        parts = [
            len(header).to_bytes(2, "big"),
            header,
            len(self._rows).to_bytes(3, "big"),
        ]
        for row in self._rows.values():
            name = row.name.encode()
            parts.append(len(name).to_bytes(2, "big"))
            parts.append(name)
            for cap in row.capabilities:
                parts.append(cap.to_bytes() if cap is not None else b"\x00" * 16)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "Directory":
        """Decode :meth:`to_bytes` output."""
        offset = 2
        header_len = int.from_bytes(raw[:2], "big")
        columns = tuple(raw[offset : offset + header_len].decode().split("|"))
        offset += header_len
        directory = cls(columns)
        n_cols = len(columns)
        row_count = int.from_bytes(raw[offset : offset + 3], "big")
        offset += 3
        for _ in range(row_count):
            name_len = int.from_bytes(raw[offset : offset + 2], "big")
            offset += 2
            name = raw[offset : offset + name_len].decode()
            offset += name_len
            caps = []
            for _ in range(n_cols):
                cell = raw[offset : offset + 16]
                offset += 16
                caps.append(
                    None if cell == b"\x00" * 16 else Capability.from_bytes(cell)
                )
            directory._rows[name] = DirRow(name, tuple(caps))
        return directory

    def serialized_size(self) -> int:
        """Byte size of the Bullet file this directory occupies."""
        return len(self.to_bytes())

    def copy(self) -> "Directory":
        """Deep-enough copy (rows are immutable tuples)."""
        dup = Directory(self.columns)
        dup._rows = dict(self._rows)
        return dup

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Directory)
            and self.columns == other.columns
            and self._rows == other._rows
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Directory cols={self.columns} rows={list(self._rows)}>"
