"""Client-side API of the directory service.

A :class:`DirectoryClient` wraps an RPC client and the service's
public port. Any of the four server implementations answers the same
requests, so benchmarks and examples drive them all through this one
class. All methods are simulation generators: call with
``yield from`` inside a process.

Server selection follows Amoeba's locate heuristic (first HEREIS
responder, NOTHERE fail-over) — the behaviour whose load-balancing
imperfection shapes the throughput curves of the paper's Fig. 8.
"""

from __future__ import annotations

from repro.amoeba.capability import Capability, Port
from repro.directory.cache import MISS, LookupCache
from repro.directory.coherence import KIND_INVACK, KIND_INVAL
from repro.directory.model import DEFAULT_COLUMNS
from repro.directory.operations import (
    AppendRow,
    ChmodRow,
    CoherentLookup,
    CreateDir,
    DeleteDir,
    DeleteRow,
    DirectoryOp,
    ListDir,
    LookupSet,
    ReplaceSet,
    SessionOp,
)
from repro.errors import LocateError, NoMajority, PathError, RpcError, ServiceDown
from repro.rpc.client import RpcClient, RpcTimings
from repro.rpc.transport import Transport

#: Rounds of end-to-end resends a retry-safe client performs on top of
#: the RPC layer's own fail-over attempts (total RPC-layer requests =
#: 1 initial send + this many resends; see _request_retry_safe).
RETRY_SAFE_ROUNDS = 3

#: CPU cost charged for a lookup served from the local cache
#: (simulated ms) — a hash probe, not an RPC. Non-zero so cache-hit
#: loops still yield to the event loop every iteration.
CACHE_HIT_COST_MS = 0.01


class DirectoryClient:
    """One client machine's handle on a directory service.

    With ``retry_safe=True`` every mutating operation is stamped with
    ``(client_id, session_seqno)`` and wrapped in a
    :class:`~repro.directory.operations.SessionOp`; the servers'
    session tables then make blind resends safe (exactly-once
    semantics), so the client retries RPC-level failures — including
    reply timeouts, where the first attempt may have committed —
    instead of surfacing them.
    """

    def __init__(
        self,
        transport: Transport,
        port: Port,
        timings: RpcTimings | None = None,
        retry_safe: bool = False,
        client_id: str | None = None,
        retry_rounds: int = RETRY_SAFE_ROUNDS,
        cache_size: int = 0,
        cache_nocoherence: bool = False,
    ):
        self.transport = transport
        self.port = port
        self.rpc = RpcClient(transport, timings or RpcTimings())
        self.operations_sent = 0
        self.retry_safe = retry_safe
        self.retry_rounds = retry_rounds
        self.client_id = client_id if client_id is not None else str(transport.address)
        self._session_seqno = 0
        self.resends = 0  # end-to-end resends actually used
        # Coherent lookup cache (docs/PROTOCOL.md "Client cache
        # coherence"). cache_size=0 (the default) keeps this client
        # byte-identical to one predating the cache: lookups go out as
        # plain LookupSet, no handler registers, no cache.* frame ever
        # appears on the wire. With a cache, lookups go out as
        # CoherentLookup, replies grant per-replica leases, and the
        # servers push invalidations which we must acknowledge.
        self.cache: LookupCache | None = None
        self.cache_served = 0  # lookup_set calls answered locally
        self.last_lookup_from_cache = False
        #: Per-replica lease expiry, computed from the *send* time of
        #: the request whose reply granted it (send ≤ grant, so we
        #: always expire no later than the server thinks we do).
        self._server_leases: dict = {}
        #: Highest invalidation seqno ever received: a reply whose
        #: epoch is older must not fill the cache (its values may
        #: predate an already-acknowledged invalidation).
        self._inval_floor = -1
        #: When False (the chaos suite's cache_nocoherence control and
        #: nothing else), invalidations are acknowledged but *ignored*
        #: — the client keeps serving doomed entries, which the
        #: extended linearizability checker must flag as stale reads.
        self._coherent = not cache_nocoherence
        if cache_size > 0:
            sim = transport.sim
            self.cache = LookupCache(
                cache_size,
                registry=sim.obs.registry,
                node=str(transport.address),
            )
            self._obs = sim.obs
            transport.register(KIND_INVAL, self._on_cache_inval)

    # -- raw request ------------------------------------------------------

    def request(
        self,
        op: DirectoryOp,
        reply_timeout_ms: float | None = None,
        spread: bool = False,
    ):
        """Send one operation and return the server's result.

        *spread* routes the request to a deterministically-random
        cached server instead of the first-HEREIS pin; only coherent
        lookups use it (cache-off clients keep the Fig. 8 heuristic
        bit-for-bit).
        """
        self.operations_sent += 1
        if self.retry_safe and not op.is_read:
            result = yield from self._request_retry_safe(op, reply_timeout_ms)
            return result
        result = yield from self.rpc.trans(
            self.port,
            op,
            size=op.wire_size(),
            reply_timeout_ms=reply_timeout_ms,
            spread=spread,
        )
        return result

    def _request_retry_safe(
        self, op: DirectoryOp, reply_timeout_ms: float | None
    ):
        """Wrap *op* in a session envelope and resend until it lands.

        The same ``(client_id, session_seqno)`` stamp is reused across
        resends, so a server that already applied the operation
        answers from its reply cache instead of applying it twice.
        Definitive directory errors (AlreadyExists, NotFound, ...)
        propagate immediately; ServiceDown and NoMajority do *not*
        count as definitive — "group failure during update" is replied
        for updates that may already be r-safe, so they are retried
        like any lost reply.

        Round accounting (made explicit after the historical
        off-by-one): the RPC layer is asked ``1 + retry_rounds`` times
        — one initial send plus ``retry_rounds`` resends — and *every*
        failed attempt is followed by one jittered backoff sleep,
        including the last. A reply timeout means the operation may
        still commit server-side, so the final backoff lets in-flight
        applies land before we surface the ambiguous RpcError to the
        caller (previously the final round's failure consumed no
        sleep, and ``retry_rounds`` silently meant "total attempts").
        """
        self._session_seqno += 1
        wrapped = SessionOp(op, self.client_id, self._session_seqno)
        last_error: Exception | None = None
        attempts = 1 + self.retry_rounds
        for attempt in range(attempts):
            if attempt:
                self.resends += 1
            try:
                result = yield from self.rpc.trans(
                    self.port,
                    wrapped,
                    size=wrapped.wire_size(),
                    reply_timeout_ms=reply_timeout_ms,
                )
                return result
            except (RpcError, LocateError, ServiceDown, NoMajority) as failure:
                last_error = failure
                yield self.sim_sleep_backoff(attempt + 1)
        raise RpcError(
            f"retry-safe request {op!r} failed after {attempts} attempts "
            f"({self.retry_rounds} resends): {last_error!r}"
        )

    def sim_sleep_backoff(self, round_no: int):
        """Deterministic jittered pause between end-to-end resends."""
        sim = self.transport.sim
        delay = min(2000.0, 100.0 * 2.0**round_no) * sim.rng.uniform(
            f"dir.client.retry.{self.client_id}", 0.5, 1.5
        )
        return sim.sleep(delay)

    # -- Fig. 2 operations ---------------------------------------------------

    def create_dir(self, columns=DEFAULT_COLUMNS):
        """Create a directory; returns its owner capability."""
        cap = yield from self.request(CreateDir(columns=tuple(columns)))
        return cap

    def delete_dir(self, cap: Capability, force: bool = False):
        """Delete a directory (must be empty unless *force*)."""
        result = yield from self.request(DeleteDir(cap, force))
        return result

    def list_dir(self, cap: Capability):
        """Rows visible through *cap*'s column mask."""
        rows = yield from self.request(ListDir(cap))
        return rows

    def append_row(self, cap: Capability, name: str, capabilities):
        """Add a (name, capabilities) row."""
        result = yield from self.request(AppendRow(cap, name, tuple(capabilities)))
        return result

    def chmod_row(self, cap: Capability, name: str, column_mask: int, capabilities):
        """Change the protection columns of a row."""
        result = yield from self.request(
            ChmodRow(cap, name, column_mask, tuple(capabilities))
        )
        return result

    def delete_row(self, cap: Capability, name: str):
        """Remove a row."""
        result = yield from self.request(DeleteRow(cap, name))
        return result

    def lookup_set(self, items):
        """Look up a set of (dir capability, name) pairs.

        With a cache (``cache_size > 0``) the whole set is served
        locally iff every pair is cached under a current replica
        lease; otherwise one :class:`CoherentLookup` goes remote (to a
        spread-chosen replica) and the reply refills the cache. With
        no cache this is exactly the pre-cache wire behaviour.
        """
        items = tuple(items)
        if self.cache is None:
            results = yield from self.request(LookupSet(items))
            return results
        results = yield from self._lookup_coherent(items)
        return results

    def _lookup_coherent(self, items):
        sim = self.transport.sim
        keys = [
            (cap.object_number, cap.rights, name) for cap, name in items
        ]
        values = self._serve_from_cache(keys)
        if values is not None:
            self.cache.count_hit()
            self.cache_served += 1
            self.last_lookup_from_cache = True
            # A local probe, but still a yield point: closed-loop
            # callers must not monopolize the event loop on hits.
            yield sim.sleep(CACHE_HIT_COST_MS)
            return values
        self.cache.count_miss()
        self.last_lookup_from_cache = False
        sent_at = sim.now
        reply = yield from self.request(CoherentLookup(items), spread=True)
        if not isinstance(reply, dict):
            # Talking to a server without coherence enabled: behave
            # like an uncached client (never fill from a reply that
            # grants no lease).
            return reply
        results = reply["results"]
        server = reply["server"]
        expiry = sent_at + reply["lease_ms"]
        if expiry > self._server_leases.get(server, 0.0):
            self._server_leases[server] = expiry
        if reply["epoch"] >= self._inval_floor:
            # Fill guard: a reply computed at an older epoch than an
            # invalidation we have already acknowledged could
            # resurrect the very entry that invalidation evicted.
            # Skipping the fill costs a future miss, never correctness.
            for key, value in zip(keys, results):
                self.cache.put(key, value, server)
        return list(results)

    def _serve_from_cache(self, keys):
        """Values for *keys* if all are cached under live leases."""
        now = self.transport.sim.now
        values = []
        for key in keys:
            entry = self.cache.get(key)
            if entry is MISS:
                return None
            value, server = entry
            if now >= self._server_leases.get(server, 0.0):
                # The granting replica's lease lapsed (it may have
                # crashed, or we simply went quiet): its invalidations
                # no longer reach us, so the entry is unservable.
                self.cache.drop(key)
                return None
            values.append(value)
        return values

    def _on_cache_inval(self, packet) -> None:
        """``cache.inval`` push from a replica applying a write."""
        payload = packet.payload
        seqno = payload["seqno"]
        if self._coherent:
            if seqno > self._inval_floor:
                self._inval_floor = seqno
            dropped = 0
            for obj, name in payload["keys"]:
                dropped += self.cache.invalidate(obj, name)
            if self._obs.tracer.enabled:
                self._obs.tracer.emit(
                    str(self.transport.address), "cache", "cache.inval.recv",
                    lineage=("cacheinv", str(packet.src), seqno),
                    seqno=seqno, keys=len(payload["keys"]), dropped=dropped,
                )
        # Always acknowledge — even the nocoherence control does (a
        # silent client would wedge the write barrier into a lease-
        # expiry stall instead of demonstrating a stale read).
        self.transport.send(
            packet.src,
            KIND_INVACK,
            {"client": self.transport.address, "seqno": seqno},
            64,
        )

    def replace_set(self, items):
        """Replace capabilities in a set of rows, indivisibly."""
        result = yield from self.request(ReplaceSet(tuple(items)))
        return result

    # -- conveniences ----------------------------------------------------------

    def lookup(self, cap: Capability, name: str):
        """Single-name lookup; returns the capability or None."""
        [result] = yield from self.lookup_set([(cap, name)])
        return result

    def exists(self, cap: Capability, name: str):
        """Whether the named row exists (visible columns only)."""
        rows = yield from self.list_dir(cap)
        return any(row.name == name for row in rows)

    # -- hierarchical names -------------------------------------------------

    def resolve_path(self, start: Capability, path: str):
        """Walk a '/'-separated path of directory rows.

        Amoeba's directory graph is built by storing directory
        capabilities inside directories; ``resolve_path(root,
        "home/ast/thesis")`` performs one lookup per component and
        returns the final capability (which may name a directory, a
        file, or any other object), or None if any component is
        missing.

        Path grammar (see :func:`_components`): empty separators
        collapse, so ``""`` and ``"/"`` resolve to *start* itself and
        ``"//a///b/"`` equals ``"a/b"``. Malformed paths (non-string,
        or a ``"."``/``".."`` component — the graph has no self/parent
        links) raise :class:`~repro.errors.PathError`.
        """
        current = start
        for component in _components(path):
            if current is None:
                return None
            current = yield from self.lookup(current, component)
        return current

    def make_path(self, start: Capability, path: str):
        """Create any missing directories along *path*; returns the
        capability of the final directory.

        Each missing component costs one create_dir plus one
        append_row (two indivisible operations — a concurrent racer
        may win the append, in which case we adopt its directory).

        Follows the same path grammar as :meth:`resolve_path`: empty
        separators collapse (``make_path(root, "//a///")`` creates
        just ``a``; ``""`` and ``"/"`` create nothing and return
        *start*), and malformed paths raise
        :class:`~repro.errors.PathError` before any operation is sent.
        """
        from repro.errors import AlreadyExists

        current = start
        for component in _components(path):
            found = yield from self.lookup(current, component)
            if found is None:
                created = yield from self.create_dir()
                try:
                    yield from self.append_row(current, component, (created,))
                    found = created
                except AlreadyExists:
                    # Lost a race: someone else created it; use theirs
                    # and discard ours.
                    yield from self.delete_dir(created)
                    found = yield from self.lookup(current, component)
            current = found
        return current


def _components(path: str) -> list[str]:
    """Split a '/'-separated path into its non-empty components.

    The grammar, previously implicit, now pinned by unit tests:

    * ``""`` and ``"/"`` have no components — they name the starting
      directory itself;
    * runs of separators and leading/trailing slashes collapse, so
      ``"//a///b/"`` == ``"a/b"`` (there are no empty row names);
    * ``"."`` and ``".."`` are not path operators in Amoeba's
      directory graph (a directory does not know its parents — it may
      have many) and raise :class:`~repro.errors.PathError`, as does a
      non-string path.
    """
    if not isinstance(path, str):
        raise PathError(f"path must be a string, not {type(path).__name__}")
    parts = [part for part in path.split("/") if part]
    for part in parts:
        if part in (".", ".."):
            raise PathError(
                f"{part!r} is not a valid path component: the directory "
                "graph has no self/parent links"
            )
    return parts
