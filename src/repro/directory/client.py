"""Client-side API of the directory service.

A :class:`DirectoryClient` wraps an RPC client and the service's
public port. Any of the four server implementations answers the same
requests, so benchmarks and examples drive them all through this one
class. All methods are simulation generators: call with
``yield from`` inside a process.

Server selection follows Amoeba's locate heuristic (first HEREIS
responder, NOTHERE fail-over) — the behaviour whose load-balancing
imperfection shapes the throughput curves of the paper's Fig. 8.
"""

from __future__ import annotations

from repro.amoeba.capability import Capability, Port
from repro.directory.model import DEFAULT_COLUMNS
from repro.directory.operations import (
    AppendRow,
    ChmodRow,
    CreateDir,
    DeleteDir,
    DeleteRow,
    DirectoryOp,
    ListDir,
    LookupSet,
    ReplaceSet,
    SessionOp,
)
from repro.errors import LocateError, NoMajority, RpcError, ServiceDown
from repro.rpc.client import RpcClient, RpcTimings
from repro.rpc.transport import Transport

#: Rounds of end-to-end resends a retry-safe client performs on top of
#: the RPC layer's own fail-over attempts.
RETRY_SAFE_ROUNDS = 3


class DirectoryClient:
    """One client machine's handle on a directory service.

    With ``retry_safe=True`` every mutating operation is stamped with
    ``(client_id, session_seqno)`` and wrapped in a
    :class:`~repro.directory.operations.SessionOp`; the servers'
    session tables then make blind resends safe (exactly-once
    semantics), so the client retries RPC-level failures — including
    reply timeouts, where the first attempt may have committed —
    instead of surfacing them.
    """

    def __init__(
        self,
        transport: Transport,
        port: Port,
        timings: RpcTimings | None = None,
        retry_safe: bool = False,
        client_id: str | None = None,
        retry_rounds: int = RETRY_SAFE_ROUNDS,
    ):
        self.transport = transport
        self.port = port
        self.rpc = RpcClient(transport, timings or RpcTimings())
        self.operations_sent = 0
        self.retry_safe = retry_safe
        self.retry_rounds = retry_rounds
        self.client_id = client_id if client_id is not None else str(transport.address)
        self._session_seqno = 0
        self.resends = 0  # end-to-end retry rounds actually used

    # -- raw request ------------------------------------------------------

    def request(self, op: DirectoryOp, reply_timeout_ms: float | None = None):
        """Send one operation and return the server's result."""
        self.operations_sent += 1
        if self.retry_safe and not op.is_read:
            result = yield from self._request_retry_safe(op, reply_timeout_ms)
            return result
        result = yield from self.rpc.trans(
            self.port, op, size=op.wire_size(), reply_timeout_ms=reply_timeout_ms
        )
        return result

    def _request_retry_safe(
        self, op: DirectoryOp, reply_timeout_ms: float | None
    ):
        """Wrap *op* in a session envelope and resend until it lands.

        The same ``(client_id, session_seqno)`` stamp is reused across
        resends, so a server that already applied the operation
        answers from its reply cache instead of applying it twice.
        Definitive directory errors (AlreadyExists, NotFound, ...)
        propagate immediately; ServiceDown and NoMajority do *not*
        count as definitive — "group failure during update" is replied
        for updates that may already be r-safe, so they are retried
        like any lost reply.
        """
        self._session_seqno += 1
        wrapped = SessionOp(op, self.client_id, self._session_seqno)
        last_error: Exception | None = None
        for round_no in range(self.retry_rounds):
            if round_no:
                self.resends += 1
                yield self.sim_sleep_backoff(round_no)
            try:
                result = yield from self.rpc.trans(
                    self.port,
                    wrapped,
                    size=wrapped.wire_size(),
                    reply_timeout_ms=reply_timeout_ms,
                )
                return result
            except (RpcError, LocateError, ServiceDown, NoMajority) as failure:
                last_error = failure
        raise RpcError(
            f"retry-safe request {op!r} failed after "
            f"{self.retry_rounds} rounds: {last_error!r}"
        )

    def sim_sleep_backoff(self, round_no: int):
        """Deterministic jittered pause between end-to-end resends."""
        sim = self.transport.sim
        delay = min(2000.0, 100.0 * 2.0**round_no) * sim.rng.uniform(
            f"dir.client.retry.{self.client_id}", 0.5, 1.5
        )
        return sim.sleep(delay)

    # -- Fig. 2 operations ---------------------------------------------------

    def create_dir(self, columns=DEFAULT_COLUMNS):
        """Create a directory; returns its owner capability."""
        cap = yield from self.request(CreateDir(columns=tuple(columns)))
        return cap

    def delete_dir(self, cap: Capability, force: bool = False):
        """Delete a directory (must be empty unless *force*)."""
        result = yield from self.request(DeleteDir(cap, force))
        return result

    def list_dir(self, cap: Capability):
        """Rows visible through *cap*'s column mask."""
        rows = yield from self.request(ListDir(cap))
        return rows

    def append_row(self, cap: Capability, name: str, capabilities):
        """Add a (name, capabilities) row."""
        result = yield from self.request(AppendRow(cap, name, tuple(capabilities)))
        return result

    def chmod_row(self, cap: Capability, name: str, column_mask: int, capabilities):
        """Change the protection columns of a row."""
        result = yield from self.request(
            ChmodRow(cap, name, column_mask, tuple(capabilities))
        )
        return result

    def delete_row(self, cap: Capability, name: str):
        """Remove a row."""
        result = yield from self.request(DeleteRow(cap, name))
        return result

    def lookup_set(self, items):
        """Look up a set of (dir capability, name) pairs."""
        results = yield from self.request(LookupSet(tuple(items)))
        return results

    def replace_set(self, items):
        """Replace capabilities in a set of rows, indivisibly."""
        result = yield from self.request(ReplaceSet(tuple(items)))
        return result

    # -- conveniences ----------------------------------------------------------

    def lookup(self, cap: Capability, name: str):
        """Single-name lookup; returns the capability or None."""
        [result] = yield from self.lookup_set([(cap, name)])
        return result

    def exists(self, cap: Capability, name: str):
        """Whether the named row exists (visible columns only)."""
        rows = yield from self.list_dir(cap)
        return any(row.name == name for row in rows)

    # -- hierarchical names -------------------------------------------------

    def resolve_path(self, start: Capability, path: str):
        """Walk a '/'-separated path of directory rows.

        Amoeba's directory graph is built by storing directory
        capabilities inside directories; ``resolve_path(root,
        "home/ast/thesis")`` performs one lookup per component and
        returns the final capability (which may name a directory, a
        file, or any other object), or None if any component is
        missing.
        """
        current = start
        for component in _components(path):
            if current is None:
                return None
            current = yield from self.lookup(current, component)
        return current

    def make_path(self, start: Capability, path: str):
        """Create any missing directories along *path*; returns the
        capability of the final directory.

        Each missing component costs one create_dir plus one
        append_row (two indivisible operations — a concurrent racer
        may win the append, in which case we adopt its directory).
        """
        from repro.errors import AlreadyExists

        current = start
        for component in _components(path):
            found = yield from self.lookup(current, component)
            if found is None:
                created = yield from self.create_dir()
                try:
                    yield from self.append_row(current, component, (created,))
                    found = created
                except AlreadyExists:
                    # Lost a race: someone else created it; use theirs
                    # and discard ours.
                    yield from self.delete_dir(created)
                    found = yield from self.lookup(current, component)
            current = found
        return current


def _components(path: str) -> list[str]:
    return [part for part in path.split("/") if part]
