"""Per-server administrative data on the raw disk partition (Fig. 4).

Block 0 is the **commit block**: the configuration vector (one bit per
server: was it up in the last majority configuration this server
belonged to?), the commit-block sequence number (updated only when a
directory is *deleted* — the deletion must be recorded somewhere even
though the directory's own file is gone), and the *recovering* flag
(set while a state transfer is in progress; a server that finds it set
at boot crashed mid-recovery, so its state may mix old and new
directories and its sequence number must be treated as zero).

Blocks 1..n-1 form the **object table**: one entry per directory
holding the capability of the Bullet file with the directory's
contents plus the sequence number of its last change. An entry update
is a shadow-page commit: the new entry is written to the shadow block,
then the home block — two synchronous random writes, which is the
dominant disk cost of an update in the group implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amoeba.capability import Capability
from repro.directory.session import (
    SessionEntry,
    decode_session_record,
    encode_session_record,
)
from repro.errors import CorruptBlock, StorageError
from repro.storage.disk import RawPartition

COMMIT_BLOCK = 0
SHADOW_BLOCK = 1
FIRST_ENTRY_BLOCK = 2
#: Blocks reserved at the top of the partition for session records
#: (one per client); overridable per deployment via ServiceConfig.
DEFAULT_SESSION_BLOCKS = 64


@dataclass
class CommitBlock:
    """Decoded contents of block 0."""

    config_vector: tuple  # bool per server index
    seqno: int
    recovering: bool
    #: High-water mark of allocated object numbers; keeps deleted
    #: directories' numbers from being reused after a full restart.
    next_object: int = 2

    def to_bytes(self) -> bytes:
        bits = sum((1 << i) for i, up in enumerate(self.config_vector) if up)
        return (
            b"CBLK"
            + len(self.config_vector).to_bytes(1, "big")
            + bits.to_bytes(2, "big")
            + self.seqno.to_bytes(8, "big")
            + (b"\x01" if self.recovering else b"\x00")
            + self.next_object.to_bytes(3, "big")
        )

    @classmethod
    def from_bytes(cls, raw: bytes, n_servers: int) -> "CommitBlock":
        if not raw or raw[:4] != b"CBLK":
            # Virgin disk: optimistically presume everyone was in the
            # last configuration, so first-ever boot requires all
            # servers present (mourned set starts empty).
            return cls(tuple(True for _ in range(n_servers)), 0, False)
        count = raw[4]
        bits = int.from_bytes(raw[5:7], "big")
        return cls(
            tuple(bool(bits & (1 << i)) for i in range(count)),
            int.from_bytes(raw[7:15], "big"),
            raw[15] == 1,
            int.from_bytes(raw[16:19], "big"),
        )


class AdminPartition:
    """One server's commit block + object table on its raw partition."""

    def __init__(
        self,
        partition: RawPartition,
        server_index: int,
        n_servers: int,
        session_blocks: int = DEFAULT_SESSION_BLOCKS,
    ):
        self.partition = partition
        self.server_index = server_index
        self.n_servers = n_servers
        # The top *session_blocks* blocks hold per-client session
        # records; the object table never allocates from that region.
        # Tiny partitions (unit tests) cap the reservation at a
        # quarter so the object table keeps the lion's share.
        reserve = min(
            session_blocks, max(0, (partition.length - FIRST_ENTRY_BLOCK) // 4)
        )
        self._session_area_start = partition.length - reserve
        # RAM mirrors (write-through); rebuilt by load() at boot.
        self.commit = CommitBlock(tuple(True for _ in range(n_servers)), 0, False)
        self.entries: dict[int, tuple[Capability, int]] = {}
        self.entry_checks: dict[int, int] = {}
        self._block_of: dict[int, int] = {}
        self._free_blocks: list[int] = list(
            range(FIRST_ENTRY_BLOCK, self._session_area_start)
        )
        self.session_entries: dict[str, SessionEntry] = {}
        self._session_block_map: dict[str, int] = {}
        self._free_session_blocks: list[int] = list(
            range(self._session_area_start, partition.length)
        )
        #: Blocks (and pseudo-entries, see :meth:`quarantine_object`)
        #: that failed their integrity check at boot. A non-empty
        #: quarantine means this disk cannot certify completeness, so
        #: :meth:`highest_seqno` claims zero — the replica never wins
        #: the donor election and the Fig. 6 state transfer rewrites
        #: the damaged objects from an operational peer. Recovery
        #: clears the quarantine after the final seal.
        self.quarantined_blocks: list[int] = []

    # -- boot ---------------------------------------------------------------

    def load(self, lineage=None):
        """Read the partition back after a restart (``yield from``).

        Returns the decoded commit block; the object-table mirror is
        rebuilt as a side effect.
        """
        self.quarantined_blocks = []
        try:
            raw = yield from self.partition.read_block(COMMIT_BLOCK, lineage=lineage)
            self.commit = CommitBlock.from_bytes(raw, self.n_servers)
        except CorruptBlock:
            # A corrupt commit block is indistinguishable from a crash
            # mid-recovery: claim nothing (the paper's recovering rule)
            # and let the donor transfer rebuild this replica.
            self.commit = CommitBlock(
                tuple(True for _ in range(self.n_servers)), 0, True
            )
            self.quarantined_blocks.append(COMMIT_BLOCK)
        self.entries = {}
        self.entry_checks = {}
        self._block_of = {}
        self._free_blocks = []
        for index in range(FIRST_ENTRY_BLOCK, self._session_area_start):
            try:
                raw = self.partition.peek_block(index)  # sequential scan,
                # charged as one sweep below rather than per block
            except CorruptBlock:
                # The entry (if it was one) is unreadable: quarantine
                # it and reuse the block. The donor transfer rewrites
                # whatever directory lived here; the scrubber blanks
                # the rot if the block stays free.
                self.quarantined_blocks.append(index)
                self._free_blocks.append(index)
                continue
            if raw[:4] == b"DENT":
                obj = int.from_bytes(raw[4:7], "big")
                cap = Capability.from_bytes(raw[7:23])
                seqno = int.from_bytes(raw[23:31], "big")
                check = int.from_bytes(raw[31:37], "big")
                self.entries[obj] = (cap, seqno)
                self.entry_checks[obj] = check
                self._block_of[obj] = index
            else:
                self._free_blocks.append(index)
        self.session_entries = {}
        self._session_block_map = {}
        self._free_session_blocks = []
        for index in range(self._session_area_start, self.partition.length):
            try:
                decoded = decode_session_record(self.partition.peek_block(index))
            except CorruptBlock:
                self.quarantined_blocks.append(index)
                self._free_session_blocks.append(index)
                continue
            if decoded is None:
                self._free_session_blocks.append(index)
                continue
            client_id, entry = decoded
            known = self.session_entries.get(client_id)
            if known is not None and known.last_seqno >= entry.last_seqno:
                # A stale leftover for the same client (should not
                # happen — records overwrite in place — but be safe).
                self._free_session_blocks.append(index)
                continue
            if known is not None:
                self._free_session_blocks.append(
                    self._session_block_map[client_id]
                )
            self.session_entries[client_id] = entry
            self._session_block_map[client_id] = index
        # One sequential sweep over the table.
        yield from self.partition.disk._occupy(
            "sequential", (self.partition.length - 1) * 1024, lineage=lineage
        )
        return self.commit

    # -- commit block ----------------------------------------------------------

    def write_commit_block(
        self, config_vector=None, seqno=None, recovering=None, next_object=None,
        lineage=None,
    ):
        """Update and persist block 0 (one synchronous random write)."""
        if config_vector is not None:
            self.commit.config_vector = tuple(config_vector)
        if seqno is not None:
            self.commit.seqno = seqno
        if recovering is not None:
            self.commit.recovering = recovering
        if next_object is not None:
            self.commit.next_object = max(self.commit.next_object, next_object)
        yield from self.partition.write_block(
            COMMIT_BLOCK, self.commit.to_bytes(), lineage=lineage
        )

    # -- object table ------------------------------------------------------------

    @staticmethod
    def _encode_entry(obj: int, cap: Capability, seqno: int, check: int) -> bytes:
        return (
            b"DENT"
            + obj.to_bytes(3, "big")
            + cap.to_bytes()
            + seqno.to_bytes(8, "big")
            + check.to_bytes(6, "big")
        )

    def store_entry(
        self, obj: int, cap: Capability, seqno: int, check: int = 0, lineage=None
    ):
        """Write one object-table entry (Bullet capability, seqno, and
        the directory's owner check) with a shadow-page commit — two
        synchronous random writes."""
        block = self._block_of.get(obj)
        if block is None:
            if not self._free_blocks:
                raise StorageError("object table is full")
            block = self._free_blocks.pop(0)
            self._block_of[obj] = block
        encoded = self._encode_entry(obj, cap, seqno, check)
        yield from self.partition.write_block(SHADOW_BLOCK, encoded, lineage=lineage)
        yield from self.partition.write_block(block, encoded, lineage=lineage)
        self.entries[obj] = (cap, seqno)
        self.entry_checks[obj] = check

    # -- session records ---------------------------------------------------

    def _session_block_for(self, client_id: str) -> int:
        """The block holding *client_id*'s record, allocating (or
        reclaiming the least-recently-active client's block) on
        first touch."""
        block = self._session_block_map.get(client_id)
        if block is not None:
            return block
        if self._free_session_blocks:
            block = self._free_session_blocks.pop(0)
        else:
            victim = min(
                self._session_block_map,
                key=lambda cid: (self.session_entries[cid].last_active, cid),
            )
            block = self._session_block_map.pop(victim)
            del self.session_entries[victim]
        self._session_block_map[client_id] = block
        return block

    def store_session(self, client_id: str, entry: SessionEntry, lineage=None):
        """Persist one client's session record — a single synchronous
        block write (single-block writes are atomic, so no shadow
        page is needed: the record is replaced whole or not at all)."""
        block = self._session_block_for(client_id)
        yield from self.partition.write_block(
            block, encode_session_record(client_id, entry), lineage=lineage
        )
        self.session_entries[client_id] = entry

    def commit_batch(
        self,
        stores,
        removals=(),
        commit_seqno: int | None = None,
        commit_next_object: int | None = None,
        session_stores=(),
        lineage=None,
    ):
        """Group-commit several object-table updates in ONE disk flush.

        *stores* is a list of ``(obj, cap, seqno, check)`` tuples (the
        batch's final image of each touched directory), *removals* a
        list of deleted object numbers. The shadow block gets the
        packed images of every stored entry (the batch journal), then
        every home block, every removal's blanked block, and — when the
        batch contained deletions — the commit block, all in a single
        multi-block write priced as one seek plus a sequential
        transfer (:meth:`~repro.storage.disk.Disk.write_blocks`).

        Atomicity matches the singleton shadow-page commit: the disk
        exposes all blocks of the batch together, and a crash before
        the flush completes loses the whole batch — which is safe,
        because every record in it is still r-safe in the group and is
        replayed by recovery (see docs/PROTOCOL.md, "Group commit").
        """
        writes: list[tuple[int, bytes]] = []
        journal = b""
        for obj, cap, seqno, check in stores:
            block = self._block_of.get(obj)
            if block is None:
                if not self._free_blocks:
                    raise StorageError("object table is full")
                block = self._free_blocks.pop(0)
                self._block_of[obj] = block
            encoded = self._encode_entry(obj, cap, seqno, check)
            journal += encoded
            writes.append((block, encoded))
        # The packed journal replaces the per-entry shadow write; a
        # batch bigger than one block's worth of images simply spills
        # into the same shadow block sequentially (one arm pass).
        writes = [
            (SHADOW_BLOCK, journal[offset:offset + 1024])
            for offset in range(0, len(journal), 1024)
        ] + writes
        touched_commit = False
        for obj in removals:
            block = self._block_of.pop(obj, None)
            if block is not None:
                writes.append((block, b""))
                self._free_blocks.append(block)
            self.entries.pop(obj, None)
            self.entry_checks.pop(obj, None)
            touched_commit = True
        if touched_commit:
            if commit_seqno is not None:
                self.commit.seqno = commit_seqno
            if commit_next_object is not None:
                self.commit.next_object = max(
                    self.commit.next_object, commit_next_object
                )
            writes.append((COMMIT_BLOCK, self.commit.to_bytes()))
        # Session records (one block per client, overwritten in place)
        # join the same single flush; *session_stores* is a list of
        # ``(client_id, SessionEntry)`` pairs.
        for client_id, entry in session_stores:
            writes.append(
                (
                    self._session_block_for(client_id),
                    encode_session_record(client_id, entry),
                )
            )
        yield from self.partition.write_blocks(writes, lineage=lineage)
        for obj, cap, seqno, check in stores:
            self.entries[obj] = (cap, seqno)
            self.entry_checks[obj] = check
        for client_id, entry in session_stores:
            self.session_entries[client_id] = entry

    def remove_entry(self, obj: int, commit_seqno: int, next_object: int = 0, lineage=None):
        """Drop a directory's entry and record the deletion in the
        commit block's sequence number (the paper's rationale for
        keeping a seqno there at all). The allocation high-water mark
        rides along so deleted object numbers are never reused."""
        block = self._block_of.pop(obj, None)
        if block is not None:
            yield from self.partition.write_block(block, b"", lineage=lineage)
            self._free_blocks.append(block)
        self.entries.pop(obj, None)
        self.entry_checks.pop(obj, None)
        yield from self.write_commit_block(
            seqno=commit_seqno, next_object=next_object, lineage=lineage
        )

    def highest_seqno(self, ignore_recovering: bool = False) -> int:
        """Max over entry seqnos and the commit-block seqno — the
        value recovery compares across servers.

        Zero when the *recovering* flag is set: the server crashed in
        the middle of a state transfer, so its disk mixes old and new
        directories (the paper's rule). The flag matters at boot time;
        a server that sets it during its own, still-running transfer
        passes ``ignore_recovering=True`` where it knows its in-RAM
        state is coherent.

        Also zero while anything is quarantined: a disk that lost
        entries to detected corruption cannot certify completeness, so
        it must never win the donor election (same reasoning as the
        recovering flag, and the same ``ignore_recovering`` escape
        applies once the transfer has repaired RAM).
        """
        if (self.commit.recovering or self.quarantined_blocks) \
                and not ignore_recovering:
            return 0
        entry_max = max((s for _, s in self.entries.values()), default=0)
        return max(entry_max, self.commit.seqno)

    # -- integrity ----------------------------------------------------------

    def quarantine_object(self, obj: int) -> None:
        """Quarantine one directory whose *Bullet file* was detected
        corrupt at rebuild time: drop it from the table mirror so the
        donor transfer rewrites it, and poison :meth:`highest_seqno`
        like any other quarantined block."""
        block = self._block_of.pop(obj, None)
        if block is not None:
            self._free_blocks.append(block)
            self.quarantined_blocks.append(block)
        else:
            self.quarantined_blocks.append(-obj)
        self.entries.pop(obj, None)
        self.entry_checks.pop(obj, None)

    def clear_quarantine(self) -> None:
        """Recovery repaired every quarantined object (final seal)."""
        self.quarantined_blocks = []

    def verify_block(self, index: int, expected: bytes) -> bool:
        """Zero-time audit: does partition block *index* hold exactly
        *expected*? A failed integrity check counts as a mismatch —
        this is the scrubber's detection primitive."""
        try:
            return self.partition.peek_block(index) == expected
        except CorruptBlock:
            return False

    def expected_blocks(self) -> dict[int, bytes]:
        """What every mapped partition block should hold right now,
        straight from the RAM mirrors (the scrubber's audit source).

        Mirrors are updated only after their flush completes and with
        no intervening yield, so at any scheduling point the mapped
        disk blocks must equal this — any difference is bit rot, a
        lost/misdirected write, or a torn batch tail. Blocks mid-
        allocation (``_block_of`` set, mirror not yet) are omitted;
        the next pass audits them. The shadow block is transient
        journal space and is never mapped."""
        expected = {COMMIT_BLOCK: self.commit.to_bytes()}
        for obj, block in self._block_of.items():
            entry = self.entries.get(obj)
            if entry is None:
                continue  # flush in flight
            cap, seqno = entry
            expected[block] = self._encode_entry(
                obj, cap, seqno, self.entry_checks.get(obj, 0)
            )
        for client_id, block in self._session_block_map.items():
            entry = self.session_entries.get(client_id)
            if entry is not None:
                expected[block] = encode_session_record(client_id, entry)
        return expected
