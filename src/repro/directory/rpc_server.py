"""The RPC-based directory service (the paper's previous design).

Two servers, each on its own machine with its own Bullet server and
disk. Semantics per sections 1 and 5 of the paper:

* **reads** are served by either server without communication;
* an **update** arriving at one server triggers an RPC to the other
  server with the intended update; if the peer is *not busy with a
  conflicting operation* it stores the intentions (write-behind — the
  acknowledgement is not delayed by the disk) and answers OK; the
  initiator then performs the update — new Bullet file, object-table
  commit, plus the extra intentions-bookkeeping disk write the paper's
  analysis charges the RPC design for — and replies to the client;
* replication is **lazy**: the peer applies the update in the
  background after acknowledging, so for a window only one disk holds
  the new directory (the availability weakness the paper points out);
* **no partition tolerance**: when the peer stops answering, the
  initiator soldiers on alone — exactly the behaviour that makes the
  RPC design unsafe under network partitions (both halves would
  diverge).

Concurrency control: the intent/OK handshake doubles as a service-wide
write lock — a peer refuses intents while it is initiating an update
itself or still has unapplied intentions queued, and the initiator
retries. A deterministic index priority (lower index wins) breaks the
symmetric-deadlock case where both servers initiate at once.

Object numbers are allocated from disjoint parity classes (server 0
even, server 1 odd) and shipped inside the CreateDir operation, so the
lazy replica mints the identical capability.
"""

from __future__ import annotations

import dataclasses
from collections import deque

from repro.amoeba.capability import new_check
from repro.directory.admin import AdminPartition
from repro.directory.config import ServiceConfig
from repro.directory.operations import CreateDir, DirectoryOp, SessionOp
from repro.directory.state import DirectoryState
from repro.errors import (
    CapabilityError,
    DirectoryError,
    Interrupted,
    LocateError,
    RpcError,
    ServiceDown,
)
from repro.rpc.client import RpcClient, RpcTimings
from repro.rpc.server import RpcServer
from repro.rpc.transport import Transport
from repro.sim.primitives import Mutex
from repro.storage.bullet import BulletClient


class PeerBusy(ServiceDown):
    """The peer refused an intent because a conflicting op is active."""


class RpcDirectoryServer:
    """One of the two replicas of the RPC directory service."""

    def __init__(
        self,
        config: ServiceConfig,
        index: int,
        transport: Transport,
        bullet_port,
        admin: AdminPartition,
    ):
        self.config = config
        self.index = index
        self.transport = transport
        self.sim = transport.sim
        self.me = transport.address
        self.admin = admin

        self.state = DirectoryState(config.port, config.root_check)
        self._configure_state(self.state)
        # Disjoint object-number classes: server 0 allocates even,
        # server 1 odd (root is object 1, so start above it).
        self._next_alloc = 2 + index
        self.rpc_server = RpcServer(transport, config.port, f"rpcdir.{index}")
        self.private_rpc = RpcServer(transport, config.recovery_port(index))
        self.peer_port = config.recovery_port(1 - index)
        self.rpc_client = RpcClient(transport, RpcTimings(reply_timeout_ms=500.0))
        self.bullet = BulletClient(self.rpc_client, bullet_port)

        self.operational = False
        self.alive = True
        self.peer_reachable = True
        self._update_mutex = Mutex(f"rpcdir.{index}.update")
        self._lazy_queue: deque = deque()
        self._processes = []

        self.reads_served = 0
        self.writes_served = 0
        self._obs = self.sim.obs
        registry = self.sim.obs.registry
        node = str(self.me)
        self._c_reads = registry.counter(node, "dir.reads")
        self._c_writes = registry.counter(node, "dir.writes")
        self._c_intents_stored = registry.counter(node, "dir.intents_stored")
        self._c_lazy_applied = registry.counter(node, "dir.lazy_applied")
        self._c_peer_busy = registry.counter(node, "dir.peer_busy")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        spawn = self.sim.spawn
        self._processes = [
            spawn(self._boot(), f"rpcdir.{self.index}.boot"),
            spawn(self._peer_service(), f"rpcdir.{self.index}.peer-svc"),
            spawn(self._lazy_applier(), f"rpcdir.{self.index}.lazy"),
            spawn(self._peer_probe(), f"rpcdir.{self.index}.probe"),
        ]
        for t in range(self.config.server_threads):
            self._processes.append(
                spawn(self._server_thread(), f"rpcdir.{self.index}.srv{t}")
            )

    def _boot(self):
        """Load disk state; prefer a fresher copy from the peer."""
        yield from self.admin.load()
        try:
            reply = yield from self.rpc_client.trans(
                self.peer_port, {"op": "get_state"}, reply_timeout_ms=2000.0
            )
            peer_state = DirectoryState.from_snapshot(
                self.config.port, reply["snapshot"]
            )
            if peer_state.update_seqno >= self.admin.highest_seqno():
                yield from self._install_state(peer_state, reply["entry_seqnos"])
            else:
                yield from self._rebuild_from_disk()
        except (RpcError, LocateError):
            self.peer_reachable = False
            yield from self._rebuild_from_disk()
        self._next_alloc = max(
            self._next_alloc,
            _next_in_class(self.state.next_object, self.index),
        )
        self.operational = True

    def _configure_state(self, state: DirectoryState) -> None:
        state.session_cache_size = self.config.session_cache_size
        state.dedup_enabled = self.config.dedup_enabled

    def _install_state(self, new_state: DirectoryState, entry_seqnos: dict):
        for obj in sorted(new_state.directories):
            donor_seq = entry_seqnos.get(obj)
            if donor_seq is None:
                continue
            mine = self.admin.entries.get(obj)
            if mine is not None and mine[1] == donor_seq:
                continue
            data = new_state.directories[obj].to_bytes()
            cap = yield from self.bullet.create(data)
            yield from self.admin.store_entry(
                obj, cap, donor_seq, new_state.checks[obj]
            )
        for obj in list(self.admin.entries):
            if obj not in new_state.directories:
                yield from self.admin.remove_entry(
                    obj, new_state.update_seqno, new_state.next_object
                )
        for client_id, entry in new_state.sessions.items():
            mine = self.admin.session_entries.get(client_id)
            if mine is None or mine.last_seqno != entry.last_seqno:
                yield from self.admin.store_session(client_id, entry)
        self._configure_state(new_state)
        new_state.trim_sessions()
        self.state = new_state

    def _rebuild_from_disk(self):
        from repro.directory.model import Directory

        state = DirectoryState(self.config.port, self.config.root_check)
        next_object = state.next_object
        for obj, (cap, _seqno) in sorted(self.admin.entries.items()):
            data = yield from self.bullet.read(cap)
            state.directories[obj] = Directory.from_bytes(data)
            state.checks[obj] = self.admin.entry_checks.get(obj, 0)
            next_object = max(next_object, obj + 1)
        state.next_object = max(next_object, self.admin.commit.next_object)
        state.update_seqno = self.admin.highest_seqno()
        state.sessions = dict(self.admin.session_entries)
        self._configure_state(state)
        state.trim_sessions()
        self.state = state

    def crash(self) -> None:
        self.alive = False
        self.operational = False
        for process in self._processes:
            process.kill(f"rpcdir.{self.index} crash")
        self._processes = []

    # ------------------------------------------------------------------
    # client-facing threads
    # ------------------------------------------------------------------

    def _server_thread(self):
        while self.alive:
            try:
                op, handle = yield self.rpc_server.getreq()
            except Interrupted:
                return
            if not self.operational:
                handle.error(ServiceDown(f"rpcdir.{self.index} still booting"))
                continue
            try:
                yield from self._handle_request(op, handle)
            except Interrupted:
                raise
            except Exception as exc:
                handle.error(ServiceDown(f"internal error: {exc!r}"))

    def _handle_request(self, op: DirectoryOp, handle):
        tracer = self._obs.tracer
        if op.is_read:
            if tracer.enabled:
                tracer.emit(
                    str(self.me), "dir", "dir.read.recv", op=type(op).__name__
                )
            yield from self.transport.cpu.use(
                self._latency().cpu.read_processing_ms
            )
            try:
                result = self.state.query(op)
            except (DirectoryError, CapabilityError) as exc:
                handle.error(exc)
                return
            self.reads_served += 1
            self._c_reads.inc()
            if tracer.enabled:
                tracer.emit(str(self.me), "dir", "dir.read.reply")
            handle.reply(result, size=96)
            return
        if tracer.enabled:
            tracer.emit(
                str(self.me), "dir", "dir.write.recv", op=type(op).__name__
            )
        op = self._prepare_write(op)
        yield from self._update_mutex.acquire_gen()
        try:
            accepted = yield from self._notify_peer_with_retry(op)
            if not accepted:
                handle.error(ServiceDown("peer persistently busy"))
                return
            yield from self.transport.cpu.use(
                self._latency().cpu.write_processing_ms
            )
            try:
                result, effects = self.state.apply(op)
            except (DirectoryError, CapabilityError) as exc:
                self.state.update_seqno += 1
                handle.error(exc)
                return
            # The RPC design's extra bookkeeping write: record that our
            # intentions are now committed locally (write-behind, so it
            # costs little latency — but it is one more disk op, which
            # bench E4 counts).
            yield from self.admin.partition.write_block(1, b"intent", kind="cached")
            yield from self._persist_effects(effects)
            self.writes_served += 1
            self._c_writes.inc()
            if tracer.enabled:
                tracer.emit(str(self.me), "dir", "dir.write.reply")
            if isinstance(result, Exception):
                # A session op whose execution failed: the error is the
                # cached (and replayed) reply.
                handle.error(result)
            else:
                handle.reply(result, size=96)
        finally:
            self._update_mutex.release()

    def _prepare_write(self, op: DirectoryOp) -> DirectoryOp:
        if isinstance(op, SessionOp):
            inner = self._prepare_write(op.op)
            if inner is not op.op:
                return dataclasses.replace(op, op=inner)
            return op
        if isinstance(op, CreateDir) and op.check is None:
            rng = self.sim.rng.stream(f"rpcdir.{self.config.name}.check.{self.index}")
            obj = self._next_alloc
            self._next_alloc += 2
            return dataclasses.replace(op, check=new_check(rng), object_number=obj)
        return op

    # ------------------------------------------------------------------
    # intentions protocol
    # ------------------------------------------------------------------

    def _notify_peer_with_retry(self, op: DirectoryOp, attempts: int = 400):
        """The intent/OK handshake; returns False on persistent busy.

        On a busy peer, the higher-index server releases its own write
        lock while backing off so the lower-index server's symmetric
        intent can get through (deadlock break).
        """
        if not self.peer_reachable:
            return True  # running solo, no partition tolerance
        rng = self.sim.rng.stream(f"rpcdir.retry.{self.index}")
        for _ in range(attempts):
            try:
                yield from self.rpc_client.trans(
                    self.peer_port,
                    {"op": "intent", "update": op},
                    size=op.wire_size() + 32,
                    reply_timeout_ms=500.0,
                )
                return True
            except PeerBusy:
                if self.index > 0:
                    self._update_mutex.release()
                yield self.sim.sleep(rng.uniform(2.0, 8.0))
                if self.index > 0:
                    yield from self._update_mutex.acquire_gen()
            except (RpcError, LocateError):
                # Peer dead or partitioned: continue alone (the RPC
                # design explicitly does not tolerate partitions).
                self.peer_reachable = False
                return True
        return False

    def _peer_service(self):
        while self.alive:
            try:
                request, handle = yield self.private_rpc.getreq()
            except Interrupted:
                return
            kind = request["op"]
            if kind == "ping":
                handle.reply({"seqno": self.state.update_seqno}, size=32)
                if request["seqno"] > self.state.update_seqno:
                    self.sim.spawn(
                        self._refresh_from_peer(),
                        f"rpcdir.{self.index}.resync",
                    )
                self.peer_reachable = True
                continue
            if kind == "get_state":
                handle.reply(
                    {
                        "snapshot": self.state.to_snapshot(),
                        "entry_seqnos": {
                            obj: seqno
                            for obj, (_, seqno) in self.admin.entries.items()
                        },
                    },
                    size=self.state.snapshot_size(),
                )
                continue
            if kind != "intent":
                handle.error(DirectoryError(f"unknown peer op {kind!r}"))
                continue
            if self._update_mutex.held or self._lazy_queue:
                self._c_peer_busy.inc()
                handle.error(PeerBusy("conflicting operation in progress"))
                continue
            # Store intentions with write-behind and acknowledge.
            self._lazy_queue.append(request["update"])
            self._c_intents_stored.inc()
            if self._obs.tracer.enabled:
                self._obs.tracer.emit(str(self.me), "dir", "dir.intent.stored")
            self.peer_reachable = True
            handle.reply("OK", size=32)

    def _peer_probe(self):
        """Retry an unreachable peer every few seconds.

        On contact, compare sequence numbers: whichever side is behind
        pulls a fresh snapshot, so the replicas reconverge after the
        solo-operation window (the RPC design's answer to a repaired
        peer; a repaired *partition* still leaves both sides believing
        they are current — the flaw the group design fixes).
        """
        while self.alive:
            yield self.sim.sleep(2_000.0)
            if self.peer_reachable or not self.operational:
                continue
            try:
                reply = yield from self.rpc_client.trans(
                    self.peer_port,
                    {"op": "ping", "seqno": self.state.update_seqno},
                    reply_timeout_ms=500.0,
                )
            except (RpcError, LocateError, ServiceDown):
                continue
            if reply["seqno"] > self.state.update_seqno:
                yield from self._refresh_from_peer()
            self.peer_reachable = True

    def _refresh_from_peer(self):
        try:
            reply = yield from self.rpc_client.trans(
                self.peer_port, {"op": "get_state"}, reply_timeout_ms=5_000.0
            )
        except (RpcError, LocateError, ServiceDown):
            return
        peer_state = DirectoryState.from_snapshot(
            self.config.port, reply["snapshot"]
        )
        if peer_state.update_seqno >= self.state.update_seqno:
            yield from self._install_state(peer_state, reply["entry_seqnos"])

    def _lazy_applier(self):
        """Applies acknowledged intentions in the background (lazy
        replication: 'the second copy is created later')."""
        while self.alive:
            if not self._lazy_queue:
                yield self.sim.sleep(1.0)
                continue
            op = self._lazy_queue[0]
            yield from self.admin.partition.write_block(1, b"intent", kind="cached")
            yield from self.transport.cpu.use(
                self._latency().cpu.write_processing_ms
            )
            try:
                _, effects = self.state.apply(op)
            except (DirectoryError, CapabilityError):
                self.state.update_seqno += 1
                effects = None
            if effects is not None:
                yield from self._persist_effects(effects)
            self._lazy_queue.popleft()
            self._c_lazy_applied.inc()

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------

    def _persist_effects(self, effects):
        for obj in effects.touched:
            data = self.state.directories[obj].to_bytes()
            old_entry = self.admin.entries.get(obj)
            new_cap = yield from self.bullet.create(data)
            yield from self.admin.store_entry(
                obj, new_cap, self.state.update_seqno, self.state.checks[obj]
            )
            if old_entry is not None:
                self._cleanup_later(old_entry[0])
        for obj in effects.deleted:
            old_entry = self.admin.entries.get(obj)
            yield from self.admin.remove_entry(
                obj, self.state.update_seqno, self.state.next_object
            )
            if old_entry is not None:
                self._cleanup_later(old_entry[0])
        for client_id in effects.sessions:
            entry = self.state.sessions.get(client_id)
            if entry is not None:
                yield from self.admin.store_session(client_id, entry)

    def _cleanup_later(self, cap) -> None:
        def cleanup():
            try:
                yield from self.bullet.delete(cap)
            except Exception:
                pass

        if self.alive:
            self.sim.spawn(cleanup(), f"rpcdir.{self.index}.gc")

    def _latency(self):
        return self.transport.nic.network.latency


def _next_in_class(minimum: int, index: int) -> int:
    """Smallest value >= minimum in server *index*'s parity class."""
    value = max(minimum, 2)
    while value % 2 != index:
        value += 1
    return value
