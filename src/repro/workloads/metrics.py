"""Latency and throughput collection with a measurement window."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Collects per-operation samples; honours a warmup boundary.

    Samples recorded before :attr:`window_start` (simulated ms) are
    dropped, so callers can warm caches and port lookups first.
    """

    window_start: float = 0.0
    window_end: float = math.inf
    samples: dict[str, list[float]] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, start_ms: float, end_ms: float) -> None:
        """One completed operation spanning [start_ms, end_ms]."""
        if start_ms < self.window_start or end_ms > self.window_end:
            return
        self.samples.setdefault(kind, []).append(end_ms - start_ms)

    def record_error(self, kind: str) -> None:
        self.errors[kind] = self.errors.get(kind, 0) + 1

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold *other*'s samples and errors into this collector.

        Used to combine per-shard or per-client collectors into one
        summary; the merged window spans both inputs. Returns self so
        merges chain: ``total.merge(a).merge(b)``.
        """
        for kind, values in other.samples.items():
            self.samples.setdefault(kind, []).extend(values)
        for kind, count in other.errors.items():
            self.errors[kind] = self.errors.get(kind, 0) + count
        self.window_start = min(self.window_start, other.window_start)
        self.window_end = max(self.window_end, other.window_end)
        return self

    # -- summaries ---------------------------------------------------------

    def count(self, kind: str) -> int:
        return len(self.samples.get(kind, []))

    def total_count(self) -> int:
        return sum(len(values) for values in self.samples.values())

    def mean(self, kind: str) -> float:
        values = self.samples.get(kind, [])
        return sum(values) / len(values) if values else math.nan

    def percentile(self, kind: str, p: float, method: str = "linear") -> float:
        """The *p*-th percentile of *kind*'s samples.

        ``method="linear"`` interpolates between the two nearest order
        statistics (numpy's default definition), so percentiles vary
        smoothly with p even for small sample counts.
        ``method="nearest"`` keeps the historical nearest-rank answer
        (always an observed sample).
        """
        values = sorted(self.samples.get(kind, []))
        if not values:
            return math.nan
        position = p / 100.0 * (len(values) - 1)
        if method == "nearest":
            rank = min(len(values) - 1, max(0, int(round(position))))
            return values[rank]
        if method != "linear":
            raise ValueError(f"unknown percentile method {method!r}")
        position = min(len(values) - 1.0, max(0.0, position))
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return values[low]
        fraction = position - low
        return values[low] + (values[high] - values[low]) * fraction

    def stddev(self, kind: str) -> float:
        values = self.samples.get(kind, [])
        if len(values) < 2:
            return 0.0
        mu = self.mean(kind)
        return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))

    def throughput_per_second(self, kind: str, window_ms: float) -> float:
        """Completed ops of *kind* per (simulated) second of window."""
        if window_ms <= 0:
            return 0.0
        return self.count(kind) * 1000.0 / window_ms

    def summary(self, window_ms: float | None = None) -> dict:
        """One dict per kind: count/mean/p50/p95 (+ throughput)."""
        out = {}
        for kind in sorted(self.samples):
            entry = {
                "count": self.count(kind),
                "mean_ms": self.mean(kind),
                "p50_ms": self.percentile(kind, 50),
                "p95_ms": self.percentile(kind, 95),
                "stddev_ms": self.stddev(kind),
            }
            if window_ms:
                entry["per_second"] = self.throughput_per_second(kind, window_ms)
            out[kind] = entry
        return out
