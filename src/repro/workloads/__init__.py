"""Workload generators and metrics for the paper's experiments.

The three benchmark workloads of section 4:

* **append-delete** — append a (name, capability) row, delete it
  (the temporary-file name pattern);
* **tmp-file** — create a 4-byte file, register its capability, look
  the name up, read the file back, delete the name (a compiler's
  temporary between two passes);
* **lookup** — pure directory lookups (98% of production traffic per
  the paper's three-week trace).

Closed-loop clients drive these against any of the service
implementations; :class:`~repro.workloads.metrics.Metrics` collects
latency and throughput over a measurement window.
"""

from repro.workloads.clients import ClosedLoopClient
from repro.workloads.generators import (
    ZipfianNames,
    append_delete_once,
    lookup_once,
    mixed_once,
    tmp_file_once,
)
from repro.workloads.metrics import Metrics

__all__ = [
    "ClosedLoopClient",
    "Metrics",
    "ZipfianNames",
    "append_delete_once",
    "lookup_once",
    "mixed_once",
    "tmp_file_once",
]
