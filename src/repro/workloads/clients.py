"""Closed-loop workload drivers.

A :class:`ClosedLoopClient` issues one operation after another with no
think time — the paper's throughput experiments (Figs. 8 and 9) use
exactly this shape: N clients hammering the service, each with one
outstanding request.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ReproError
from repro.workloads.metrics import Metrics


class ClosedLoopClient:
    """Runs ``make_iteration()`` back to back until told to stop."""

    def __init__(
        self,
        sim,
        name: str,
        make_iteration: Callable[[int], "generator"],
        metrics: Metrics,
        kind: str,
    ):
        self.sim = sim
        self.name = name
        self.make_iteration = make_iteration
        self.metrics = metrics
        self.kind = kind
        self.iterations = 0
        self.errors = 0
        self._stop = False
        self._process = None

    def start(self) -> None:
        self._process = self.sim.spawn(self._run(), f"workload.{self.name}")

    def stop(self) -> None:
        self._stop = True

    @property
    def finished(self) -> bool:
        return self._process is not None and self._process.resolved

    def _run(self):
        while not self._stop:
            start = self.sim.now
            try:
                yield from self.make_iteration(self.iterations)
            except ReproError:
                self.errors += 1
                self.metrics.record_error(self.kind)
                yield self.sim.sleep(5.0)  # brief backoff after failure
                continue
            self.iterations += 1
            self.metrics.record(self.kind, start, self.sim.now)


def run_closed_loop(
    sim,
    clients: list[ClosedLoopClient],
    warmup_ms: float,
    measure_ms: float,
) -> float:
    """Start *clients*, run warmup + measurement, stop them.

    Sets each client's shared metrics window to the measurement span
    and returns the measurement duration (for throughput math).
    """
    window_start = sim.now + warmup_ms
    for client in clients:
        client.metrics.window_start = window_start
        client.metrics.window_end = window_start + measure_ms
        client.start()
    sim.run(until=window_start + measure_ms)
    for client in clients:
        client.stop()
    # Let in-flight operations drain so processes exit cleanly.
    sim.run(until=sim.now + 2_000.0)
    return measure_ms
