"""The single-iteration bodies of the paper's three workloads.

Each generator performs ONE iteration against a
:class:`~repro.directory.client.DirectoryClient` (plus, for the
tmp-file test, a file-service client with BulletClient's API) and
returns nothing; closed-loop drivers run them repeatedly.
"""

from __future__ import annotations

FOUR_BYTES = b"tmp!"


class ZipfianNames:
    """A Zipf(α) distribution over a fixed name list.

    ``pick(rng)`` draws a name with probability ∝ 1/rank^α (rank =
    position in *names*, 1-based), via a precomputed CDF and one
    ``rng.random()`` call — the hot-key generator for cache workloads:
    with α around 1.1 a handful of names absorb most lookups, which is
    what makes a small client cache effective (and what the directory
    trace in the paper's section 4 looks like: 98 % reads, heavily
    skewed toward a few working-set names).
    """

    def __init__(self, names, alpha: float = 1.1):
        self.names = list(names)
        if not self.names:
            raise ValueError("ZipfianNames needs at least one name")
        self.alpha = alpha
        weights = [1.0 / (rank**alpha) for rank in range(1, len(self.names) + 1)]
        total = sum(weights)
        self._cdf = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # close the rounding gap

    def pick(self, rng) -> str:
        """One draw, using a single ``rng.random()`` (bisect on the CDF)."""
        from bisect import bisect_left

        return self.names[bisect_left(self._cdf, rng.random())]


def append_delete_once(client, directory_cap, name: str, target_cap):
    """Append a (name, capability) row and delete it again."""
    yield from client.append_row(directory_cap, name, (target_cap,))
    yield from client.delete_row(directory_cap, name)


def tmp_file_once(client, directory_cap, file_service, name: str):
    """The paper's compiler-temporary scenario.

    Create a 4-byte file, register its capability under *name*, look
    the name up, read the file back, and delete the name.
    """
    file_ref = yield from file_service.create(FOUR_BYTES)
    registered = _as_registrable(file_ref, client)
    yield from client.append_row(directory_cap, name, (registered,))
    yield from client.lookup(directory_cap, name)
    yield from file_service.read(file_ref)
    yield from client.delete_row(directory_cap, name)
    # The file itself would be unlinked by the application later; the
    # paper's measured sequence ends at the name deletion.


def lookup_once(client, directory_cap, name: str):
    """One directory lookup (the 98%-of-traffic operation)."""
    result = yield from client.lookup(directory_cap, name)
    return result


def mixed_once(client, directory_cap, rng, names: list, target_cap,
               read_fraction: float = 0.98, tag: str = "m"):
    """One operation drawn from the production mix (98% reads).

    Returns the kind of operation performed ("read" or "write").
    """
    if names and rng.random() < read_fraction:
        yield from client.lookup(directory_cap, rng.choice(names))
        return "read"
    if names and rng.random() < 0.5:
        name = names.pop(rng.randrange(len(names)))
        yield from client.delete_row(directory_cap, name)
    else:
        # Reserve the name up front so concurrent drivers sharing the
        # pool keep it populated while this append is in flight.
        name = f"{tag}-{rng.randrange(1 << 30)}"
        names.append(name)
        yield from client.append_row(directory_cap, name, (target_cap,))
    return "write"


def _as_registrable(file_ref, client):
    """Bullet returns a Capability; the NFS stand-in returns an int
    handle. Directories store capabilities, so wrap plain handles."""
    from repro.amoeba.capability import Capability

    if isinstance(file_ref, Capability):
        return file_ref
    from repro.amoeba.capability import ALL_RIGHTS, Port

    return Capability(
        Port.for_service("nfs.file.handle"), int(file_ref) & 0xFFFFFF, ALL_RIGHTS, 1
    )
