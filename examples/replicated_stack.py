"""The paper's closing vision, running: a FULLY fault-tolerant stack.

Section 5 ends by noting that the Bullet file service itself could be
rebuilt on group communication and NVRAM. This example runs that
extension: a triplicated file service next to the triplicated
directory service, stores a file, registers it, crashes one replica of
EACH service, and reads everything back.

Run:  python examples/replicated_stack.py
"""

from repro.cluster import GroupServiceCluster, ReplicatedBulletCluster
from repro.sim import Simulator
from repro.net import Network
from repro.sim.latency import LatencyModel


def main() -> None:
    # One simulated machine room hosting both services.
    sim = Simulator(seed=77)
    network = Network(sim, LatencyModel.paper_testbed())

    directories = GroupServiceCluster(sim=sim, network=network, name="dirs")
    files = ReplicatedBulletCluster(
        sim=sim, network=network, name="files", nvram=True
    )
    directories.start()
    files.start()
    directories.wait_operational()
    files.wait_operational()
    print(f"both services up at t={sim.now:.0f} ms: "
          f"{len(directories.servers)} directory replicas, "
          f"{len(files.servers)} file replicas (NVRAM)")

    dir_client = directories.add_client("app")
    file_client = files.add_file_client("app")
    root = directories.root_capability

    def publish():
        start = sim.now
        document = yield from file_client.create(b"the 1993 paper, reborn")
        yield from dir_client.append_row(root, "paper.txt", (document,))
        print(f"stored + named a file in {sim.now - start:.1f} ms "
              "(every byte on three replicas)")
        return document

    document = directories.run_process(publish(), "publish")

    print("\ncrashing one replica of each service ...")
    directories.crash_server(1)
    files.crash_server(2)
    directories.run(until=sim.now + 3_000.0)

    def read_back():
        found = yield from dir_client.lookup(root, "paper.txt")
        assert found == document, "directory lookup changed?!"
        data = yield from file_client.read(found)
        return data

    data = directories.run_process(read_back(), "read-back")
    print(f"read back through the surviving replicas: {data!r}")
    print("\nno single machine in this stack is a point of failure —")
    print("the claim the paper's conclusion reaches for, made executable.")


if __name__ == "__main__":
    main()
