"""The paper's tmp-file scenario across all four implementations.

A compiler writes a temporary file in pass one and reads it back in
pass two: create a 4-byte file, register its capability with the
directory service, look the name up, read the file, delete the name.
This is the second row of the paper's Fig. 7.

Run:  python examples/tmpfile_workload.py
"""

from repro.bench.harness import PAPER_FIG7, build_deployment
from repro.workloads.generators import tmp_file_once

LABELS = {
    "group": "Group (3 replicas)",
    "rpc": "RPC (2 replicas)",
    "nfs": "Sun NFS (1 copy)",
    "nvram": "Group + NVRAM (3 replicas)",
}


def measure(impl: str, iterations: int = 10) -> float:
    deployment = build_deployment(impl, seed=7)
    client = deployment.add_client("compiler")
    sim = deployment.sim
    root = deployment.root
    out = {}

    def run():
        file_service = deployment.file_service_for(client)
        # Warm the port caches so we measure the steady state.
        warm = yield from file_service.create(b"warm")
        yield from file_service.read(warm)
        yield from tmp_file_once(client, root, file_service, "warmup")
        samples = []
        for i in range(iterations):
            start = sim.now
            yield from tmp_file_once(client, root, file_service, f"pass{i}")
            samples.append(sim.now - start)
        out["mean"] = sum(samples) / len(samples)

    deployment.cluster.run_process(run())
    return out["mean"]


def main() -> None:
    print("tmp-file scenario (create file, register, lookup, read, delete)\n")
    print(f"{'implementation':<28}{'measured':>10}{'paper':>8}")
    print("-" * 46)
    for impl in ("group", "rpc", "nfs", "nvram"):
        measured = measure(impl)
        paper = PAPER_FIG7["tmp_file"][impl]
        print(f"{LABELS[impl]:<28}{measured:>8.1f} ms{paper:>6d} ms")
    print("-" * 46)
    print("\nNote how NVRAM beats even the non-fault-tolerant NFS baseline —")
    print("the paper's key observation about where fault tolerance's cost")
    print("really lives (synchronous disk writes, not replication).")


if __name__ == "__main__":
    main()
