"""Amoeba capabilities and column-restricted directory sharing.

The paper's section 2 example: a directory is a table with one column
per protection domain. The owner hands an unrelated person a
capability for the *third* column only — the recipient can use the
weak capabilities stored there but has no access to the more powerful
ones in columns one and two, and cannot modify anything.

Run:  python examples/capability_tour.py
"""

from repro.amoeba import Rights, restrict
from repro.cluster import GroupServiceCluster
from repro.errors import CapabilityError


def main() -> None:
    cluster = GroupServiceCluster(seed=21)
    cluster.start()
    cluster.wait_operational()
    owner = cluster.add_client("owner")
    guest = cluster.add_client("guest")
    root = cluster.root_capability

    def owner_session():
        shared = yield from owner.create_dir()  # columns: owner/group/other
        print("owner capability:", shared)
        print("  rights:", Rights(shared.rights).name or hex(shared.rights))

        # Two objects with different sensitivity: the powerful one goes
        # in column 1 (owner), a weak read-only one in column 3 (other).
        secret = yield from owner.create_dir()
        public = yield from owner.create_dir()
        public_readonly = restrict(public, Rights.READ | Rights.COL_1)
        yield from owner.append_row(
            shared, "report", (secret, None, public_readonly)
        )
        return shared

    shared = cluster.run_process(owner_session(), "owner")

    # The owner derives a third-column, read-only capability to share.
    guest_cap = restrict(shared, Rights.READ | Rights.COL_3)
    print("\nguest capability:", guest_cap)
    print("  (read-only, column 3 only — derived via the one-way function)")

    def guest_session():
        rows = yield from guest.list_dir(guest_cap)
        for row in rows:
            print(
                f"\nguest sees row {row.name!r}: "
                f"{[str(c) if c else None for c in row.capabilities]}"
            )
        found = yield from guest.lookup(guest_cap, "report")
        print("guest lookup('report') ->", found)
        print("  (the column-1 'secret' capability is invisible)")

        try:
            yield from guest.append_row(guest_cap, "sneaky", (guest_cap,))
        except CapabilityError as exc:
            print("\nguest tries to write -> refused:", exc)

        # Forging rights doesn't work either: the check field would
        # have to invert the one-way function.
        from dataclasses import replace

        from repro.amoeba import ALL_RIGHTS

        forged = replace(guest_cap, rights=ALL_RIGHTS)
        try:
            yield from guest.list_dir(forged)
        except CapabilityError as exc:
            print("guest forges all-rights cap -> refused:", exc)

    cluster.run_process(guest_session(), "guest")


if __name__ == "__main__":
    main()
