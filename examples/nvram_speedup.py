"""The NVRAM write log and the /tmp annihilation optimization.

Shows (a) the order-of-magnitude update speedup from taking disks out
of the critical path, and (b) the paper's /tmp observation: an append
whose delete arrives while the append record is still in NVRAM never
causes any disk operation at all.

Run:  python examples/nvram_speedup.py
"""

from repro.cluster import GroupServiceCluster, NvramServiceCluster


def timed_pairs(cluster, n=8):
    client = cluster.add_client("bench")
    root = cluster.root_capability
    out = {}

    def run():
        target = yield from client.create_dir()
        start = cluster.sim.now
        for i in range(n):
            yield from client.append_row(root, f"tmp{i}", (target,))
            yield from client.delete_row(root, f"tmp{i}")
        out["mean"] = (cluster.sim.now - start) / n

    cluster.run_process(run())
    return out["mean"]


def main() -> None:
    disk = GroupServiceCluster(seed=5, name="disk")
    disk.start()
    disk.wait_operational()
    disk_pair = timed_pairs(disk)

    nvram = NvramServiceCluster(seed=5, name="nvram")
    nvram.start()
    nvram.wait_operational()
    nvram_pair = timed_pairs(nvram)

    print("append-delete pair latency (same fault tolerance!):")
    print(f"  group service (disk):  {disk_pair:6.1f} ms")
    print(f"  group service (NVRAM): {nvram_pair:6.1f} ms")
    print(f"  speedup: {disk_pair / nvram_pair:.1f}x  (paper: 6.8x)\n")

    total_disk_ops = sum(site.disk.total_ops for site in nvram.sites)
    nvram.run(until=nvram.sim.now + 3_000.0)  # idle flush window
    after_flush = sum(site.disk.total_ops for site in nvram.sites)
    annihilated = sum(site.nvram.stats.annihilations for site in nvram.sites)
    print("the /tmp optimization:")
    print(f"  append+delete records annihilated in NVRAM: {annihilated}")
    print(
        f"  disk ops during the workload: {total_disk_ops}, "
        f"after the idle flush: {after_flush}"
    )
    print(
        "  every append was cancelled by its delete before reaching disk —\n"
        "  temporary names never cost a disk operation."
    )


if __name__ == "__main__":
    main()
