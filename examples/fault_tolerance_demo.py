"""A narrated tour of the failure scenarios from the paper.

Walks through:

1. a member crash (group reset, service continues on 2 of 3);
2. a network partition (majority side serves; minority refuses even
   reads — the paper's deleted-directory argument);
3. partition heal and automatic catch-up;
4. the full stop/restart recovery with Skeen's last-to-fail algorithm,
   including the case where recovery must WAIT for the last-failed
   server to return.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.cluster import GroupServiceCluster
from repro.errors import ReproError


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main() -> None:
    cluster = GroupServiceCluster(seed=99)
    cluster.start()
    cluster.wait_operational()
    client = cluster.add_client("demo")
    root = cluster.root_capability

    def write(name):
        def gen():
            sub = yield from client.create_dir()
            yield from client.append_row(root, name, (sub,))

        cluster.run_process(gen())
        print(f"  wrote '{name}'")

    def read(name):
        def gen():
            try:
                found = yield from client.lookup(root, name)
                return f"'{name}' -> {'found' if found else 'absent'}"
            except ReproError as exc:
                return f"'{name}' -> REFUSED ({type(exc).__name__})"

        print("  read", cluster.run_process(gen()))

    banner("1. normal operation, then a member crash")
    write("before-crash")
    cluster.crash_server(2)
    print("  server 2 crashed; waiting for detection + ResetGroup ...")
    cluster.run(until=cluster.sim.now + 2_500.0)
    views = [s.member.info().view for s in cluster.servers[:2]]
    print(f"  survivors rebuilt the group: views = {views[0]}")
    write("during-outage")
    read("before-crash")

    banner("2. restart: recovery catches the server up")
    cluster.restart_server(2)
    cluster.run(until=cluster.sim.now + 8_000.0)
    print("  server 2 operational:", cluster.servers[2].operational)
    print("  replicas identical:", cluster.replicas_consistent())
    names = cluster.servers[2].state.directories[1].names()
    print("  server 2 now knows:", sorted(names))

    banner("3. network partition: majority serves, minority refuses")
    cluster.partition_network([0, 1], [2])
    cluster.run(until=cluster.sim.now + 2_500.0)
    print("  partition {0,1} | {2} in force")
    write("during-partition")
    minority = cluster.servers[2]
    print(
        "  minority server has majority?",
        minority.has_majority(),
        "(so it refuses reads too — a client could otherwise read back",
        "a directory it already deleted via the majority side)",
    )

    banner("4. heal: the isolated server rejoins and catches up")
    cluster.heal_network()
    cluster.run(until=cluster.sim.now + 10_000.0)
    print("  server 2 operational:", cluster.servers[2].operational)
    print("  replicas identical:", cluster.replicas_consistent())

    banner("5. total stop; recovery waits for the last server to fail")
    # Crash 2 first, write via {0,1}, then crash those. Skeen's
    # algorithm must block recovery of {0,2} until 1 returns — server
    # 1 may hold the latest update.
    cluster.crash_server(2)
    cluster.run(until=cluster.sim.now + 2_500.0)
    write("the-latest-update")
    cluster.run(until=cluster.sim.now + 1_000.0)
    cluster.crash_server(0)
    cluster.crash_server(1)
    cluster.run(until=cluster.sim.now + 500.0)
    print("  all three down. restarting 0 and 2 (NOT 1) ...")
    cluster.restart_server(0)
    cluster.restart_server(2)
    cluster.run(until=cluster.sim.now + 6_000.0)
    print(
        "  can {0,2} serve?",
        cluster.servers[0].operational or cluster.servers[2].operational,
        "(server 1 crashed last; only it is guaranteed current)",
    )
    print("  restarting server 1 ...")
    cluster.restart_server(1)
    cluster.wait_operational(timeout_ms=60_000.0)
    print("  service resumed with all three servers")
    read("the-latest-update")
    print("  replicas identical:", cluster.replicas_consistent())


if __name__ == "__main__":
    main()
