"""Quickstart: a fault-tolerant directory service in ~40 lines.

Builds the paper's triplicated group directory service on a simulated
machine room, performs the basic operations, crashes a server, and
keeps working.

Run:  python examples/quickstart.py
"""

from repro.cluster import GroupServiceCluster


def main() -> None:
    # Three directory servers + three Bullet servers + three disks.
    cluster = GroupServiceCluster(seed=42)
    cluster.start()
    cluster.wait_operational()
    print(f"service operational at t={cluster.sim.now:.0f} ms (simulated)")

    client = cluster.add_client("alice")
    root = cluster.root_capability

    def session():
        # Create a directory and register it under a name.
        projects = yield from client.create_dir()
        yield from client.append_row(root, "projects", (projects,))

        # Store a capability inside it (here: another directory).
        thesis = yield from client.create_dir()
        yield from client.append_row(projects, "thesis", (thesis,))

        # Look it back up.
        found = yield from client.lookup(projects, "thesis")
        assert found == thesis
        print("lookup('thesis') ->", found)

        # List what the root sees.
        rows = yield from client.list_dir(root)
        print("root listing:", [row.name for row in rows])

    cluster.run_process(session(), "alice-session")

    # Fault tolerance: crash one of the three servers...
    print("\ncrashing directory server 2 ...")
    cluster.crash_server(2)
    cluster.run(until=cluster.sim.now + 2_500.0)  # detection + reset

    def after_crash():
        # ... and the service keeps answering (2 of 3 = majority).
        found = yield from client.lookup(root, "projects")
        print("after crash, lookup('projects') ->", found is not None)
        sub = yield from client.create_dir()
        yield from client.append_row(root, "post-crash", (sub,))
        print("writes still work: appended 'post-crash'")

    cluster.run_process(after_crash(), "after-crash")

    # The crashed server recovers and catches up automatically.
    print("\nrestarting server 2 ...")
    cluster.restart_server(2)
    cluster.run(until=cluster.sim.now + 8_000.0)
    print("server 2 operational again:", cluster.servers[2].operational)
    print("replicas identical:", cluster.replicas_consistent())


if __name__ == "__main__":
    main()
