"""Experiment E13 (ablation) — the failure-detection trade-off.

The group protocol's heartbeat timeout decides how quickly a crash is
detected, and therefore how long the service refuses requests before
the survivors reset and resume. Shorter timeouts shrink the outage but
raise the false-positive risk (and the heartbeat overhead). The paper
fixes one setting; this ablation sweeps it.
"""

from repro.cluster import GroupServiceCluster
from repro.group import GroupTimings

from conftest import write_result


def outage_window(heartbeat_timeout_ms: float, seed: int = 0) -> float:
    """Simulated ms from a member crash until the surviving majority
    serves again."""
    timings = GroupTimings(
        heartbeat_interval_ms=max(10.0, heartbeat_timeout_ms / 5.0),
        heartbeat_timeout_ms=heartbeat_timeout_ms,
        echo_timeout_ms=heartbeat_timeout_ms,
    )
    cluster = GroupServiceCluster(
        seed=seed, name=f"det{int(heartbeat_timeout_ms)}", group_timings=timings
    )
    cluster.start()
    cluster.wait_operational()
    client = cluster.add_client("probe")
    root = cluster.root_capability

    out = {}

    def probe():
        sub = yield from client.create_dir()
        yield from client.append_row(root, "canary", (sub,))
        # Pin the client to a surviving server: we are measuring the
        # service's internal outage, not the client's own dead-server
        # timeout (which would dominate otherwise).
        client.rpc._kernel.port_cache[cluster.config.port] = [
            cluster.config.server_addresses[0]
        ]
        # Crash a member, then immediately try the next update. With
        # r = 2 it cannot commit until the failure is detected and the
        # survivors reset; attempts in between fail and the client
        # retries — time-to-first-success IS the outage window.
        from repro.errors import AlreadyExists, ReproError

        cluster.crash_server(2)
        start = cluster.sim.now
        while True:
            try:
                yield from client.append_row(root, "after-crash", (sub,))
                break
            except AlreadyExists:
                break  # an errored earlier attempt actually executed
            except ReproError:
                yield cluster.sim.sleep(10.0)
        out["window"] = cluster.sim.now - start

    cluster.run_process(probe())
    return out["window"]


def heartbeat_overhead(heartbeat_timeout_ms: float, seed: int = 0) -> float:
    """Idle heartbeat+echo frames per simulated second."""
    timings = GroupTimings(
        heartbeat_interval_ms=max(10.0, heartbeat_timeout_ms / 5.0),
        heartbeat_timeout_ms=heartbeat_timeout_ms,
        echo_timeout_ms=heartbeat_timeout_ms,
    )
    cluster = GroupServiceCluster(
        seed=seed, name=f"ovh{int(heartbeat_timeout_ms)}", group_timings=timings
    )
    cluster.start()
    cluster.wait_operational()
    prefix = f"grp.dirsvc.ovh{int(heartbeat_timeout_ms)}."
    before = {
        k: v
        for k, v in cluster.network.stats.frames_by_kind.items()
        if k.startswith(prefix)
    }
    cluster.run(until=cluster.sim.now + 10_000.0)
    after = {
        k: v
        for k, v in cluster.network.stats.frames_by_kind.items()
        if k.startswith(prefix)
    }
    frames = sum(after.values()) - sum(before.values())
    return frames / 10.0


def test_detection_latency_tradeoff(benchmark, results_dir):
    timeouts = (60.0, 120.0, 480.0)

    def run():
        return {
            t: (outage_window(t), heartbeat_overhead(t)) for t in timeouts
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E13 — write outage vs heartbeat timeout (one member crash)",
        f"{'hb timeout':<12}{'write blocked':>14}{'idle frames/s':>16}",
    ]
    for timeout, (outage, overhead) in sorted(table.items()):
        lines.append(f"{timeout:<12.0f}{outage:>12.0f} ms{overhead:>16.1f}")
    lines.append(
        "(with r=2 a write cannot commit until the crash is detected\n"
        " and the survivors reset: detection latency IS the outage;\n"
        " faster detection costs proportionally more idle traffic)"
    )
    write_result(results_dir, "e13_detection_latency.txt", "\n".join(lines))
    outages = [table[t][0] for t in timeouts]
    assert outages == sorted(outages)  # longer timeout, longer outage
    # Outage tracks the timeout: the reset tail is small and fixed.
    assert outages[-1] - outages[0] > (timeouts[-1] - timeouts[0]) * 0.5
    # Faster detection costs more idle traffic.
    overheads = [table[t][1] for t in timeouts]
    assert overheads[0] > overheads[-1]
