"""Experiment E4 — section 3.1's message and disk-operation analysis.

The paper's cost accounting:

* a ``SendToGroup`` with r = 2 in a 3-member group costs 5 messages;
* an Amoeba RPC costs 3 messages;
* if the RPC service had been triplicated it would have needed 4 RPCs
  (12 messages) per update against one SendToGroup (5);
* the RPC implementation performs one more disk operation per update
  (the intentions list) than the group implementation.
"""

from repro.amoeba import Port
from repro.bench.harness import build_deployment
from repro.group import GroupMember
from repro.net import Network
from repro.rpc import RpcClient, RpcServer, Transport
from repro.sim import Simulator

from conftest import write_result

ECHO = Port.for_service("echo")


def _machines(addresses, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim)
    transports = {a: Transport(sim, network.attach(a)) for a in addresses}
    return sim, network, transports


def measure_group_send_packets() -> int:
    sim, network, transports = _machines(["a", "b", "c"])
    members = {a: GroupMember(t, "g") for a, t in transports.items()}
    members["a"].create(resilience=2)

    def join(addr):
        yield from members[addr].join()

    for addr in ("b", "c"):
        sim.run_until_complete(sim.spawn(join(addr)))

    def run():
        yield from members["b"].send_to_group("warm")
        yield sim.sleep(5.0)
        snap = network.stats.snapshot()
        yield from members["b"].send_to_group("measured")
        yield sim.sleep(2.0)
        after = network.stats.snapshot()
        interesting = ("grp.g.req", "grp.g.bc", "grp.g.ack", "grp.g.commit")
        return sum(after.get(k, 0) - snap.get(k, 0) for k in interesting)

    return sim.run_until_complete(sim.spawn(run()))


def measure_rpc_packets() -> int:
    sim, network, transports = _machines(["client", "server"])
    server = RpcServer(transports["server"], ECHO)

    def echo_thread():
        while True:
            body, handle = yield server.getreq()
            handle.reply(body)

    sim.spawn(echo_thread())
    client = RpcClient(transports["client"])

    def run():
        yield from client.trans(ECHO, "warm")
        yield sim.sleep(5.0)
        before = network.stats.frames_sent
        yield from client.trans(ECHO, "measured")
        yield sim.sleep(5.0)
        return network.stats.frames_sent - before

    return sim.run_until_complete(sim.spawn(run()))


def disk_ops_per_update(impl: str) -> float:
    """Average disk ops per append across all the service's disks."""
    deployment = build_deployment(impl, seed=0)
    client = deployment.add_client("bench")
    root = deployment.root
    sim = deployment.sim
    sites = deployment.cluster.sites
    out = {}

    def run():
        target = yield from client.create_dir()
        yield sim.sleep(3_000.0)  # lazy/background work drains
        before = sum(site.disk.total_ops for site in sites)
        n = 10
        for i in range(n):
            yield from client.append_row(root, f"m{i}", (target,))
        yield sim.sleep(3_000.0)
        after = sum(site.disk.total_ops for site in sites)
        out["per_update"] = (after - before) / n

    deployment.cluster.run_process(run())
    return out["per_update"]


def test_message_counts(benchmark, results_dir):
    def run():
        return {
            "send_to_group_r2": measure_group_send_packets(),
            "amoeba_rpc": measure_rpc_packets(),
        }

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E4 — message counts (section 3.1)",
        f"  SendToGroup (r=2, 3 members): {counts['send_to_group_r2']} packets (paper: 5)",
        f"  Amoeba RPC:                   {counts['amoeba_rpc']} packets (paper: 3)",
        "  Triplicated-RPC equivalent:   "
        f"{4 * counts['amoeba_rpc']} packets for 4 RPCs vs "
        f"{counts['send_to_group_r2']} for one SendToGroup",
    ]
    write_result(results_dir, "e4_message_counts.txt", "\n".join(lines))
    assert counts["send_to_group_r2"] == 5
    assert counts["amoeba_rpc"] == 3


def test_disk_ops_per_update(benchmark, results_dir):
    def run():
        return (
            disk_ops_per_update("group"),
            disk_ops_per_update("rpc"),
            disk_ops_per_update("nvram"),
        )

    group_ops, rpc_ops, nvram_ops = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E4 — disk operations per update (whole service)",
        f"  group service:       {group_ops:.1f} ops/update",
        f"  RPC service:         {rpc_ops:.1f} ops/update "
        "(paper: one additional op for the intentions list)",
        f"  group+NVRAM service: {nvram_ops:.1f} ops/update in steady state",
    ]
    write_result(results_dir, "e4_disk_ops.txt", "\n".join(lines))
    # The RPC service pays the extra intentions op per update. Its
    # replication factor is 2 (vs 3), so compare per-replica costs.
    assert rpc_ops / 2 > group_ops / 3
    # NVRAM batches: far fewer disk ops per update than plain group.
    assert nvram_ops < group_ops * 0.8
