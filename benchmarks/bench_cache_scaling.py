"""Experiment E8 — client lookup-cache scaling.

Aggregate lookups/s versus client count, with and without the
coherent client cache (docs/PROTOCOL.md "Client cache coherence").
The service itself tops out near the paper's measured lookup ceiling
— a few servers' worth of read threads — so without a cache, adding
clients past the saturation knee adds NOTHERE bounces, not
throughput. With the cache, the hot working set is served locally
under replica leases and aggregate throughput scales with the client
count; only the cold tail and the coherence traffic touch servers.

Workload: every client draws names Zipf(1.1)-skewed from a 64-name
hot set (repro.workloads.ZipfianNames), thinks ~2 ms between
lookups, and — in the cached arm — warms its cache with one
multi-name ``lookup_set`` before the measured window, the way a
login session's first directory scan would. Client port caches are
pre-pinned (rotated per client, so the uncached arm spreads load the
way per-client locate orders would): at the 5 000-client point a
locate broadcast storm would deliver to every NIC in the simulation
and measure the simulator, not the service.

The uncached arm is driven by at most 128 closed-loop clients
(``uncached.drivers`` in the output): the service plateaus at its
serving ceiling at a few dozen clients (the measured aggregate is
identical at 16, 128, and 1 024 drivers — more clients only add
bounce/backoff traffic), so the plateau is the best any larger
uncached population could see, and using it as the 5 000-client
baseline only *understates* the cache's speedup.

Script mode regenerates ``BENCH_cache.json`` (committed, next to
BENCH_headline.json) and can gate against it:

    PYTHONPATH=src python benchmarks/bench_cache_scaling.py \
        --quick --check-against BENCH_cache.json

The gate fails when cached throughput regresses >10% at any client
count both runs measured, or when the cached/uncached speedup at the
largest common count drops below 5x. The simulation is
deterministic: drift is a code change, not noise.
"""

import argparse
import json
import pathlib
import sys

from repro.cluster import GroupServiceCluster
from repro.rpc.client import RpcTimings
from repro.workloads import ZipfianNames

HOT_NAMES = 64
ALPHA = 1.1
THINK_MS = 2.0
CACHE_SIZE = 256
MEASURE_MS = 250.0
#: Client start times are staggered this far apart on average, so the
#: cached arm's warm-up RPCs arrive at ~1 000/s — under the service's
#: spread-read capacity — instead of as a thundering herd whose
#: NOTHERE bounces empty port caches and trigger locate-broadcast
#: storms against every NIC in the simulation.
STAGGER_MS_PER_CLIENT = 1.0
#: Closed-loop driver ceiling for the uncached arm (see module doc).
UNCACHED_DRIVER_CAP = 128

FULL_COUNTS = (16, 128, 1024, 5000)
QUICK_COUNTS = (16, 128, 1024)


def run_point(n_clients: int, cache_size: int, seed: int = 0) -> dict:
    """One arm at one client count: aggregate lookups/s + hit rate."""
    cluster = GroupServiceCluster(
        name="bcache",
        seed=seed,
        n_servers=3,
        server_threads=8,
        **(
            # Leases long enough that no client needs a mid-window
            # refresh; the coherence cost measured here is the one the
            # read path actually pays (the envelope + lease grant).
            {"cache_coherence": True, "cache_lease_ms": 10_000.0}
            if cache_size
            else {}
        ),
    )
    cluster.start()
    cluster.wait_operational()
    sim = cluster.sim
    root = cluster.root_capability
    names = [f"hot-{i}" for i in range(HOT_NAMES)]
    port = cluster.config.port
    addrs = [site.dir_address for site in cluster.sites]

    def populate():
        client = cluster.add_client("setup")
        client.rpc._kernel.port_cache[port] = list(addrs)
        for name in names:
            yield from client.append_row(root, name, (root,))

    cluster.run_process(populate(), "bcache-setup")

    zipf = ZipfianNames(names, ALPHA)
    stagger_ms = max(200.0, STAGGER_MS_PER_CLIENT * n_clients)
    warmup_ms = stagger_ms + 500.0
    measure_start = sim.now + warmup_ms
    counters = {"lookups": 0}
    clients = []

    def loop(client, rng):
        yield sim.sleep(rng.uniform(0.0, stagger_ms))
        if client.cache is not None:
            # One multi-name lookup fills the whole hot set under one
            # replica lease — a session's opening directory scan. Then
            # hold at the start barrier: cached clients looping through
            # the warm-up would only burn simulator events (their hits
            # never touch a server), while the handful of uncached
            # drivers must keep looping so the window opens on the
            # plateau, not on a cold start.
            yield from client.lookup_set([(root, name) for name in names])
            if sim.now < measure_start:
                yield sim.sleep(
                    measure_start - sim.now + rng.uniform(0.0, THINK_MS)
                )
        while True:
            yield from client.lookup(root, zipf.pick(rng))
            counters["lookups"] += 1
            yield sim.sleep(THINK_MS)

    for i in range(n_clients):
        client = cluster.add_client(
            f"w{i}",
            rpc_timings=RpcTimings(
                reply_timeout_ms=4_000.0, max_attempts=40, locate_attempts=20
            ),
            cache_size=cache_size,
        )
        # Pre-pin (no locate stamp, so the entry never ages): thousands
        # of locate broadcasts would flood every NIC in the simulation.
        # Rotating the order per client spreads the uncached arm's load
        # the way distinct per-client locate responder orders would.
        rot = i % len(addrs)
        client.rpc._kernel.port_cache[port] = addrs[rot:] + addrs[:rot]
        clients.append(client)
        sim.spawn(
            loop(client, sim.rng.stream(f"bench.cache.{i}")), f"bcache-{i}"
        )

    cluster.run(until=measure_start)
    base_lookups = counters["lookups"]
    base_cached = sum(c.cache_served for c in clients)
    cluster.run(until=sim.now + MEASURE_MS)
    lookups = counters["lookups"] - base_lookups
    cached = sum(c.cache_served for c in clients) - base_cached
    return {
        "lookups_per_s": round(lookups / (MEASURE_MS / 1000.0), 1),
        "hit_rate": round(cached / lookups, 4) if lookups else 0.0,
    }


def run_pair(n_clients: int, seed: int = 0) -> dict:
    """Cached vs uncached at one client count."""
    cached = run_point(n_clients, CACHE_SIZE, seed=seed)
    uncached_drivers = min(n_clients, UNCACHED_DRIVER_CAP)
    uncached = run_point(uncached_drivers, 0, seed=seed)
    uncached["drivers"] = uncached_drivers
    speedup = (
        cached["lookups_per_s"] / uncached["lookups_per_s"]
        if uncached["lookups_per_s"]
        else 0.0
    )
    return {
        "clients": n_clients,
        "cached": cached,
        "uncached": uncached,
        "speedup": round(speedup, 2),
    }


def run_scaling(counts=FULL_COUNTS, seed: int = 0) -> list[dict]:
    return [run_pair(n, seed=seed) for n in counts]


# ----------------------------------------------------------------------
# pytest entry points (bench suite)
# ----------------------------------------------------------------------

def test_cache_scaling(benchmark, results_dir):
    from conftest import write_result

    pair = benchmark.pedantic(run_pair, args=(128,), rounds=1, iterations=1)
    write_result(
        results_dir,
        "e8_cache_scaling.txt",
        "E8 — coherent client cache, 128 clients\n"
        f"  cached lookups/s:   {pair['cached']['lookups_per_s']:9.0f} "
        f"(hit rate {pair['cached']['hit_rate']:.2%})\n"
        f"  uncached lookups/s: {pair['uncached']['lookups_per_s']:9.0f}\n"
        f"  speedup:            {pair['speedup']:.1f}x",
    )
    assert pair["cached"]["hit_rate"] > 0.90
    assert pair["speedup"] > 1.5


def test_cache_scaling_matches_committed_baseline():
    """The committed BENCH_cache.json must describe THIS code."""
    baseline_path = pathlib.Path(__file__).parent.parent / "BENCH_cache.json"
    baseline = json.loads(baseline_path.read_text())
    top = baseline["points"][-1]
    assert top["speedup"] >= 5.0, (
        f"committed baseline claims only {top['speedup']}x at "
        f"{top['clients']} clients; the headline gate is 5x"
    )
    measured = run_pair(128)
    committed = next(p for p in baseline["points"] if p["clients"] == 128)
    floor = committed["cached"]["lookups_per_s"] * 0.90
    assert measured["cached"]["lookups_per_s"] >= floor, (
        f"cached throughput at 128 clients "
        f"{measured['cached']['lookups_per_s']:.0f}/s regressed >10% "
        f"against committed {committed['cached']['lookups_per_s']:.0f}/s"
    )


# ----------------------------------------------------------------------
# script mode (CI cache-smoke job)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_cache.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the 5000-client point (CI smoke)",
    )
    parser.add_argument(
        "--check-against", default=None,
        help="baseline JSON to gate throughput and speedup against",
    )
    parser.add_argument("--max-regression", type=float, default=0.10)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    args = parser.parse_args(argv)

    counts = QUICK_COUNTS if args.quick else FULL_COUNTS
    points = run_scaling(counts)
    result = {
        "schema": 1,
        "quick": args.quick,
        "workload": {
            "hot_names": HOT_NAMES,
            "zipf_alpha": ALPHA,
            "think_ms": THINK_MS,
            "cache_size": CACHE_SIZE,
            "measure_ms": MEASURE_MS,
        },
        "points": points,
    }

    status = 0
    if args.check_against:
        baseline = json.loads(pathlib.Path(args.check_against).read_text())
        by_count = {p["clients"]: p for p in baseline["points"]}
        common = [p for p in points if p["clients"] in by_count]
        for p in common:
            old = by_count[p["clients"]]["cached"]["lookups_per_s"]
            new = p["cached"]["lookups_per_s"]
            floor = old * (1.0 - args.max_regression)
            verdict = "ok" if new >= floor else "REGRESSED"
            print(
                f"{p['clients']:>5} clients cached: {new:.0f}/s "
                f"(baseline {old:.0f}/s, floor {floor:.0f}/s) {verdict}"
            )
            if verdict != "ok":
                status = 1
        if common:
            top = common[-1]
            verdict = "ok" if top["speedup"] >= args.min_speedup else "FAILED"
            print(
                f"speedup at {top['clients']} clients: {top['speedup']}x "
                f"(gate {args.min_speedup}x) {verdict}"
            )
            if verdict != "ok":
                status = 1

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return status


if __name__ == "__main__":
    sys.exit(main())
