"""Experiment E7 (ablation) — recovery behaviour (section 3.2).

The paper gives the recovery protocol but no recovery-time
measurements, so this is an ablation over our implementation:

* recovery time of a restarted server vs the number of directories it
  must transfer;
* the §3.2 improved rule: a survivor that never crashed can pair with
  a restarted stale server, while the strict rule forces it to wait —
  we measure the availability difference directly.
"""

from repro.cluster import GroupServiceCluster

from conftest import write_result


def populate(cluster, n_dirs: int):
    client = cluster.add_client("loader")
    root = cluster.root_capability

    def work():
        for i in range(n_dirs):
            sub = yield from client.create_dir()
            yield from client.append_row(root, f"d{i}", (sub,))

    cluster.run_process(work())
    cluster.run(until=cluster.sim.now + 2_000.0)


def recovery_time(n_dirs: int, seed: int = 0) -> float:
    """Simulated ms for a crashed server to become operational again,
    with *n_dirs* directories updated while it was down."""
    cluster = GroupServiceCluster(seed=seed, name=f"rec{n_dirs}")
    cluster.start()
    cluster.wait_operational()
    cluster.crash_server(2)
    cluster.run(until=cluster.sim.now + 2_000.0)  # detection + reset
    populate(cluster, n_dirs)  # server 2 misses all of this
    start = cluster.sim.now
    cluster.restart_server(2)
    deadline = start + 120_000.0
    while not cluster.servers[2].operational and cluster.sim.now < deadline:
        cluster.run(until=cluster.sim.now + 20.0)
    assert cluster.servers[2].operational, "recovery never finished"
    assert cluster.replicas_consistent()
    return cluster.sim.now - start


def test_recovery_time_scales_with_transfer_size(benchmark, results_dir):
    def run():
        return {n: recovery_time(n) for n in (0, 10, 40)}

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["E7 — rejoin-recovery time vs directories to transfer"]
    for n, t in sorted(times.items()):
        lines.append(f"  {n:3d} dirs missed: {t:8.0f} ms")
    write_result(results_dir, "e7_recovery_time.txt", "\n".join(lines))
    assert times[40] > times[10] > times[0]
    # Per-directory transfer cost is bounded (no quadratic blowup).
    per_dir = (times[40] - times[0]) / 40
    assert per_dir < 500.0


def improved_rule_outcome(improved: bool, seed: int = 3):
    """The §3.2 scenario: 3 crashes, {1,2} continue, 2 crashes, 1 stays
    up; then 3 restarts. Can {1,3} resume service?"""
    cluster = GroupServiceCluster(
        seed=seed,
        name="imp" if improved else "strict",
        improved_recovery_rule=improved,
    )
    cluster.start()
    cluster.wait_operational()
    client = cluster.add_client("c")
    root = cluster.root_capability

    def seed_write():
        sub = yield from client.create_dir()
        yield from client.append_row(root, "seed", (sub,))

    cluster.run_process(seed_write())
    cluster.crash_server(2)  # "server 3" dies
    cluster.run(until=cluster.sim.now + 2_500.0)

    def more_writes():
        sub = yield from client.create_dir()
        yield from client.append_row(root, "after3died", (sub,))

    cluster.run_process(more_writes())
    cluster.run(until=cluster.sim.now + 1_500.0)
    cluster.crash_server(1)  # "server 2" dies; server 1 stays up
    start = cluster.sim.now
    cluster.run(until=cluster.sim.now + 2_500.0)
    cluster.restart_server(2)  # "server 3" comes back (stale)
    cluster.run(until=cluster.sim.now + 30_000.0)
    available = cluster.servers[0].operational and cluster.servers[2].operational
    if not available:
        return None  # service still blocked
    consistent = cluster.replicas_consistent()
    names = cluster.servers[2].state.directories[1].names()
    return {
        "resumed_after_ms": cluster.sim.now - start,
        "consistent": consistent,
        "has_latest": "after3died" in names,
    }


def test_improved_rule_restores_availability(benchmark, results_dir):
    def run():
        return improved_rule_outcome(True), improved_rule_outcome(False)

    with_rule, without_rule = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["E7b — §3.2 improved recovery rule (1 stayed up, 3 restarts stale)"]
    if with_rule:
        lines.append(
            f"  improved rule ON : service resumed after "
            f"{with_rule['resumed_after_ms']:.0f} ms, consistent="
            f"{with_rule['consistent']}, latest update present="
            f"{with_rule['has_latest']}"
        )
    else:
        lines.append("  improved rule ON : service did NOT resume (unexpected)")
    lines.append(
        "  improved rule OFF: service "
        + ("resumed (unexpected)" if without_rule else
           "stayed blocked waiting for server 2 (the strict rule)")
    )
    write_result(results_dir, "e7b_improved_rule.txt", "\n".join(lines))
    assert with_rule is not None
    assert with_rule["consistent"] and with_rule["has_latest"]
    assert without_rule is None
