"""Experiment E12 (ablation) — how the conclusions age with hardware.

The paper's second main conclusion: "disk operations are the major
performance bottleneck in providing fault tolerance." This ablation
re-runs the append-delete experiment while sweeping disk technology
from the 1993 Wren IV to a modern low-latency device, and watches the
conclusion — and NVRAM's raison d'être — dissolve as seeks vanish:
with sub-millisecond storage the plain group service converges on the
NVRAM variant, and the cost of fault tolerance falls toward the pure
protocol overhead.
"""

from dataclasses import replace

from repro.bench.harness import build_deployment
from repro.sim.latency import DiskLatency, LatencyModel
from repro.workloads.generators import append_delete_once

from conftest import write_result

DISK_GENERATIONS = {
    # label: (seek, rotation, per_kb) in ms
    "1993 Wren IV": DiskLatency(seek_ms=24.0, rotation_ms=8.3, per_kb_ms=0.8),
    "2000s 10k rpm": DiskLatency(seek_ms=4.5, rotation_ms=3.0, per_kb_ms=0.02),
    "SATA SSD": DiskLatency(seek_ms=0.05, rotation_ms=0.0, per_kb_ms=0.003),
    "NVMe": DiskLatency(seek_ms=0.01, rotation_ms=0.0, per_kb_ms=0.0005),
}


def pair_latency(impl: str, disk: DiskLatency, seed: int = 0) -> float:
    latency = LatencyModel.paper_testbed()
    latency = replace(latency, disk=disk)
    deployment = build_deployment(impl, seed=seed, latency=latency)
    client = deployment.add_client("bench")
    sim = deployment.sim
    root = deployment.root
    out = {}

    def run():
        target = yield from client.create_dir()
        samples = []
        for i in range(8):
            start = sim.now
            yield from append_delete_once(client, root, f"t{i}", target)
            samples.append(sim.now - start)
        out["mean"] = sum(samples) / len(samples)

    deployment.cluster.run_process(run())
    return out["mean"]


def test_disk_technology_sweep(benchmark, results_dir):
    def run():
        table = {}
        for label, disk in DISK_GENERATIONS.items():
            table[label] = {
                impl: pair_latency(impl, disk) for impl in ("group", "nvram")
            }
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E12 — append-delete pair (ms) vs disk generation",
        f"{'disk':<16}{'Group (3)':>12}{'Group+NVRAM':>14}{'NVRAM gain':>12}",
    ]
    for label, row in table.items():
        gain = row["group"] / row["nvram"]
        lines.append(
            f"{label:<16}{row['group']:>12.1f}{row['nvram']:>14.1f}{gain:>11.1f}x"
        )
    lines.append(
        "(the paper's 'disks are the bottleneck' conclusion is hardware-\n"
        " bound: on NVMe-class storage the NVRAM board buys almost nothing\n"
        " and fault tolerance costs only the group protocol itself)"
    )
    write_result(results_dir, "e12_disk_technology.txt", "\n".join(lines))

    wren = table["1993 Wren IV"]
    nvme = table["NVMe"]
    assert wren["group"] / wren["nvram"] > 5.0  # the paper's 6.8x era
    assert nvme["group"] / nvme["nvram"] < 1.5  # the advantage is gone
    assert nvme["group"] < wren["group"] * 0.2