"""Experiment E5 — the paper's headline numbers (abstract/conclusion).

"The group directory service allows for 627 lookup operations per
second and 88 update operations per second" (updates measured with
NVRAM; an append-delete pair is two updates, so 44 pairs/s ≈ 88
updates/s).

Since the group-commit change this file is also a SCRIPT: running it
directly regenerates ``BENCH_headline.json`` — the committed
before/after record of the batching work — and can gate on a
committed baseline:

    PYTHONPATH=src python benchmarks/bench_headline.py \
        --out BENCH_headline.json \
        --check-against BENCH_headline.json

The check fails (exit 1) when the single-client update latency of the
batched disk service regresses more than 5% against the baseline.
The simulation is deterministic, so any drift is a real code change,
not noise.
"""

import argparse
import json
import pathlib
import sys

from repro.bench import lookup_throughput, update_latency, update_throughput


def run_headline(measure_ms=15_000.0):
    lookups = lookup_throughput(
        "group", 7, seed=0, measure_ms=min(measure_ms, 8_000.0)
    )
    pairs = update_throughput("nvram", 7, seed=0, measure_ms=measure_ms)
    return lookups, pairs * 2.0


def run_group_commit(measure_ms=15_000.0):
    """Before/after record of group-commit batching on the disk-backed
    group service (``server_threads=8`` so requests can queue)."""
    out = {
        "single_client_latency_ms": {
            "batched": update_latency("group", seed=0, server_threads=8),
            "batch_max_1": update_latency(
                "group", seed=0, server_threads=8, batch_max=1
            ),
        },
        "pairs_per_s": {"batched": {}, "batch_max_1": {}},
    }
    for n in (1, 8):
        out["pairs_per_s"]["batched"][str(n)] = update_throughput(
            "group", n, seed=0, measure_ms=measure_ms, server_threads=8
        )
        out["pairs_per_s"]["batch_max_1"][str(n)] = update_throughput(
            "group", n, seed=0, measure_ms=measure_ms, server_threads=8, batch_max=1
        )
    out["scaling_x"] = round(
        out["pairs_per_s"]["batched"]["8"] / out["pairs_per_s"]["batched"]["1"], 2
    )
    return out


# ----------------------------------------------------------------------
# pytest entry points (bench suite)
# ----------------------------------------------------------------------

def test_headline_numbers(benchmark, results_dir):
    from conftest import write_result

    lookups, updates = benchmark.pedantic(run_headline, rounds=1, iterations=1)
    write_result(
        results_dir,
        "e5_headline.txt",
        "E5 — headline throughput of the group directory service\n"
        f"  lookups/s (7 clients):        {lookups:6.0f}   (paper: 627)\n"
        f"  updates/s (NVRAM, 7 clients): {updates:6.0f}   (paper: 88)",
    )
    assert 520 <= lookups <= 820
    assert 70 <= updates <= 120


def test_headline_matches_committed_baseline():
    """The committed BENCH_headline.json must describe THIS code."""
    baseline_path = pathlib.Path(__file__).parent.parent / "BENCH_headline.json"
    baseline = json.loads(baseline_path.read_text())
    measured = update_latency("group", seed=0, server_threads=8)
    committed = baseline["group_commit"]["single_client_latency_ms"]["batched"]
    assert measured <= committed * 1.05, (
        f"single-client update latency {measured:.1f} ms regressed >5% "
        f"against committed baseline {committed:.1f} ms"
    )


# ----------------------------------------------------------------------
# script mode (CI bench-smoke job)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_headline.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter measurement windows (CI smoke)",
    )
    parser.add_argument(
        "--check-against", default=None,
        help="baseline JSON to gate single-client update latency against",
    )
    parser.add_argument("--max-latency-regression", type=float, default=0.05)
    args = parser.parse_args(argv)

    measure_ms = 6_000.0 if args.quick else 15_000.0
    lookups, updates = run_headline(measure_ms)
    group_commit = run_group_commit(measure_ms)
    result = {
        "schema": 1,
        "quick": args.quick,
        "headline": {
            "lookups_per_s": round(lookups, 1),
            "paper_lookups_per_s": 627,
            "nvram_updates_per_s": round(updates, 1),
            "paper_updates_per_s": 88,
        },
        "group_commit": {
            k: (
                {ik: (round(iv, 2) if isinstance(iv, float) else iv)
                 for ik, iv in v.items()}
                if isinstance(v, dict) else v
            )
            for k, v in group_commit.items()
        },
    }
    # Round the nested pairs_per_s leaves too.
    for curve in result["group_commit"]["pairs_per_s"].values():
        for k in curve:
            curve[k] = round(curve[k], 2)

    status = 0
    if args.check_against:
        baseline = json.loads(pathlib.Path(args.check_against).read_text())
        allowed = 1.0 + args.max_latency_regression
        old = baseline["group_commit"]["single_client_latency_ms"]["batched"]
        new = result["group_commit"]["single_client_latency_ms"]["batched"]
        verdict = "ok" if new <= old * allowed else "REGRESSED"
        print(
            f"single-client update latency: {new:.1f} ms "
            f"(baseline {old:.1f} ms, limit {old * allowed:.1f} ms) {verdict}"
        )
        if verdict != "ok":
            status = 1

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return status


if __name__ == "__main__":
    sys.exit(main())
