"""Experiment E5 — the paper's headline numbers (abstract/conclusion).

"The group directory service allows for 627 lookup operations per
second and 88 update operations per second" (updates measured with
NVRAM; an append-delete pair is two updates, so 44 pairs/s ≈ 88
updates/s).
"""

from repro.bench import lookup_throughput, update_throughput

from conftest import write_result


def run_headline():
    lookups = lookup_throughput("group", 7, seed=0, measure_ms=8_000.0)
    pairs = update_throughput("nvram", 7, seed=0, measure_ms=15_000.0)
    return lookups, pairs * 2.0


def test_headline_numbers(benchmark, results_dir):
    lookups, updates = benchmark.pedantic(run_headline, rounds=1, iterations=1)
    write_result(
        results_dir,
        "e5_headline.txt",
        "E5 — headline throughput of the group directory service\n"
        f"  lookups/s (7 clients):        {lookups:6.0f}   (paper: 627)\n"
        f"  updates/s (NVRAM, 7 clients): {updates:6.0f}   (paper: 88)",
    )
    assert 520 <= lookups <= 820
    assert 70 <= updates <= 120
