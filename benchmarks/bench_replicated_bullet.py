"""Experiment E10 (extension) — the replicated Bullet file service.

Implements and measures the paper's closing suggestion (section 5):
"A reimplementation of Amoeba's Bullet file service using group
communication as well as NVRAM is certainly feasible." We compare a
small-file create on:

* the original single-copy Bullet server (no fault tolerance),
* the group-replicated Bullet service (3 copies, r = 2),
* the group-replicated service with NVRAM in the write path.

The interesting result mirrors the directory-service story: active
replication over multicast costs little (the extra packets are cheap),
the synchronous disk writes dominate, and NVRAM removes them — a
triply-replicated file create becomes cheaper than the original
unreplicated one.
"""

from repro.cluster import ReplicatedBulletCluster
from repro.net import Network
from repro.rpc import RpcClient, Transport
from repro.sim import LatencyModel, Simulator
from repro.storage import BulletClient, BulletServer, Disk

from conftest import write_result


def single_bullet_create_latency(seed: int = 0) -> float:
    sim = Simulator(seed=seed)
    network = Network(sim, LatencyModel.paper_testbed())
    server_t = Transport(sim, network.attach("bullet"))
    client_t = Transport(sim, network.attach("client"))
    disk = Disk(sim, "d0")
    server = BulletServer(server_t, disk, "single")
    client = BulletClient(RpcClient(client_t), server.port)
    out = {}

    def work():
        yield from client.create(b"warm")
        start = sim.now
        yield from client.create(b"file")
        out["t"] = sim.now - start

    sim.run_until_complete(sim.spawn(work()))
    return out["t"]


def replicated_create_latency(nvram: bool, seed: int = 0) -> float:
    cluster = ReplicatedBulletCluster(
        seed=seed, nvram=nvram, name="e10n" if nvram else "e10d"
    )
    cluster.start()
    cluster.wait_operational()
    client = cluster.add_file_client("bench")
    out = {}

    def work():
        yield from client.create(b"warm")
        start = cluster.sim.now
        yield from client.create(b"file")
        out["t"] = cluster.sim.now - start

    cluster.run_process(work())
    return out["t"]


def test_replicated_bullet_latency(benchmark, results_dir):
    def run():
        return {
            "single": single_bullet_create_latency(),
            "replicated": replicated_create_latency(False),
            "replicated_nvram": replicated_create_latency(True),
        }

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E10 — small-file create latency (the §5 replicated Bullet)",
        f"  single Bullet (1 copy, no FT):     {costs['single']:6.1f} ms",
        f"  group Bullet (3 copies, r=2):      {costs['replicated']:6.1f} ms",
        f"  group Bullet + NVRAM (3 copies):   {costs['replicated_nvram']:6.1f} ms",
        "  (replication over multicast adds a few ms; NVRAM makes the",
        "   fault-tolerant service faster than the original)",
    ]
    write_result(results_dir, "e10_replicated_bullet.txt", "\n".join(lines))
    single, repl, repl_nv = (
        costs["single"],
        costs["replicated"],
        costs["replicated_nvram"],
    )
    # Active replication costs only the group protocol (a few ms).
    assert repl < single + 10.0
    # NVRAM beats even the unreplicated original.
    assert repl_nv < single
    assert repl_nv < repl * 0.6
