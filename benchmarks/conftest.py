"""Shared helpers for the benchmark suite.

Each bench regenerates one table/figure of the paper (or one ablation)
and writes its rendered output under ``benchmarks/results/`` so the
numbers recorded in EXPERIMENTS.md can be re-derived at any time.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print("\n" + text)
