"""Experiment E8 (ablation) — NVRAM sizing and the /tmp optimization.

Section 5 cites Baker et al.: half a megabyte of NVRAM can cut disk
accesses by 20-90%. This ablation runs a temporary-name workload
(append soon followed by delete, the paper's /tmp pattern) against
group+NVRAM services with different board sizes and measures disk
operations saved and the annihilation rate.
"""

from repro.cluster import NvramServiceCluster

from conftest import write_result


def tmp_name_workload(nvram_bytes: int, pairs: int = 60, seed: int = 0):
    """Run append→(short delay)→delete pairs; return disk-op stats."""
    cluster = NvramServiceCluster(
        seed=seed, name=f"nv{nvram_bytes}", nvram_bytes=nvram_bytes
    )
    cluster.start()
    cluster.wait_operational()
    client = cluster.add_client("c")
    root = cluster.root_capability

    def work():
        target = yield from client.create_dir()
        yield cluster.sim.sleep(2_000.0)  # initial create flushed
        for i in range(pairs):
            yield from client.append_row(root, f"tmp{i}", (target,))
            yield from client.delete_row(root, f"tmp{i}")

    baseline_ops = sum(site.disk.total_ops for site in cluster.sites)
    cluster.run_process(work())
    cluster.run(until=cluster.sim.now + 5_000.0)  # final flush
    disk_ops = sum(site.disk.total_ops for site in cluster.sites) - baseline_ops
    annihilations = sum(site.nvram.stats.annihilations for site in cluster.sites)
    flushes = sum(site.nvram.stats.flushes for site in cluster.sites)
    return {
        "disk_ops": disk_ops,
        "annihilations": annihilations,
        "flushes": flushes,
    }


def disk_service_ops(pairs: int = 60, seed: int = 0) -> int:
    """Same workload on the plain (disk) group service, for reference."""
    from repro.cluster import GroupServiceCluster

    cluster = GroupServiceCluster(seed=seed, name="nvref")
    cluster.start()
    cluster.wait_operational()
    client = cluster.add_client("c")
    root = cluster.root_capability

    def work():
        target = yield from client.create_dir()
        for i in range(pairs):
            yield from client.append_row(root, f"tmp{i}", (target,))
            yield from client.delete_row(root, f"tmp{i}")

    baseline = sum(site.disk.total_ops for site in cluster.sites)
    cluster.run_process(work())
    cluster.run(until=cluster.sim.now + 2_000.0)
    return sum(site.disk.total_ops for site in cluster.sites) - baseline


def test_nvram_size_ablation(benchmark, results_dir):
    sizes = (2 * 1024, 8 * 1024, 24 * 1024)

    def run():
        reference = disk_service_ops()
        return reference, {size: tmp_name_workload(size) for size in sizes}

    reference, by_size = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E8 — NVRAM sizing on the /tmp workload (60 append-delete pairs)",
        f"  plain group service: {reference} disk ops",
    ]
    for size, stats in sorted(by_size.items()):
        saved = 100.0 * (1.0 - stats["disk_ops"] / reference) if reference else 0.0
        lines.append(
            f"  NVRAM {size // 1024:3d} KB: {stats['disk_ops']:4d} disk ops "
            f"({saved:4.0f}% saved), {stats['annihilations']} annihilations, "
            f"{stats['flushes']} flushes"
        )
    lines.append("  (Baker et al.: NVRAM write buffers save 20-90% of disk ops)")
    write_result(results_dir, "e8_nvram_size.txt", "\n".join(lines))
    paper_board = by_size[24 * 1024]
    # The paper-size board annihilates the tmp pattern almost entirely.
    assert paper_board["disk_ops"] < reference * 0.2
    assert paper_board["annihilations"] > 0
    # Bigger boards never cost more disk ops than smaller ones.
    ops = [by_size[s]["disk_ops"] for s in sorted(by_size)]
    assert ops[0] >= ops[-1]
