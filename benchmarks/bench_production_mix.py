"""Experiment E11 — the production workload mix (section 2).

"Measurements over three weeks showed that 98% of all directory
operations are reads. Therefore, both the RPC directory service and
the group directory service optimize read operations."

This bench runs the 98/2 mix against the group and NVRAM services and
verifies the design's payoff: under the real mix, overall throughput
is read-dominated (disks barely matter), so the fault-tolerant
services sustain hundreds of mixed ops/s even though pure-write
throughput is only ~10 ops/s.
"""

from repro.bench.harness import build_deployment
from repro.workloads.clients import ClosedLoopClient, run_closed_loop
from repro.workloads.generators import mixed_once
from repro.workloads.metrics import Metrics

from conftest import write_result


def mixed_throughput(impl: str, read_fraction: float, n_clients: int = 4,
                     seed: int = 0, measure_ms: float = 10_000.0):
    deployment = build_deployment(impl, seed=seed)
    sim = deployment.sim
    root = deployment.root
    metrics = Metrics()

    setup_client = deployment.add_client("setup")
    shared = {"names": [], "target": None}

    def setup():
        shared["target"] = yield from setup_client.create_dir()
        for i in range(10):
            name = f"seed-{i}"
            yield from setup_client.append_row(root, name, (shared["target"],))
            shared["names"].append(name)

    deployment.cluster.run_process(setup())

    clients = []
    for i in range(n_clients):
        directory_client = deployment.add_client(f"mix{i}")
        rng = sim.rng.stream(f"mix.{i}")

        def iteration(_n, c=directory_client, r=rng, tag=i):
            kind = yield from mixed_once(
                c, root, r, shared["names"], shared["target"],
                read_fraction=read_fraction, tag=f"c{tag}",
            )
            return kind

        clients.append(ClosedLoopClient(sim, f"mix{i}", iteration, metrics, "op"))
    window = run_closed_loop(sim, clients, 2_000.0, measure_ms)
    return metrics.throughput_per_second("op", window)


def test_production_mix(benchmark, results_dir):
    def run():
        out = {}
        for impl in ("group", "nvram"):
            out[impl] = {
                fraction: mixed_throughput(impl, fraction)
                for fraction in (0.98, 0.50, 0.0)
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E11 — throughput under read/write mixes (4 clients, total ops/s)",
        f"{'read fraction':<16}{'Group (3)':>12}{'Group+NVRAM':>14}",
    ]
    for fraction in (0.98, 0.50, 0.0):
        lines.append(
            f"{fraction:<16.2f}{results['group'][fraction]:>12.0f}"
            f"{results['nvram'][fraction]:>14.0f}"
        )
    lines.append(
        "(two findings: the 98%-read production mix runs ~25x above the\n"
        " pure-write rate, vindicating the read-optimized design; AND a\n"
        " closed-loop client still stalls ~300 ms on every write, so\n"
        " NVRAM pays off even at 2% writes — each write is 6+ read-times)"
    )
    write_result(results_dir, "e11_production_mix.txt", "\n".join(lines))
    group = results["group"]
    # Read-dominated: production mix runs far above the write-only rate.
    assert group[0.98] > group[0.0] * 10.0
    # NVRAM multiplies pure-write throughput several-fold...
    assert results["nvram"][0.0] > group[0.0] * 3.0
    # ...and still helps at the production mix, because the rare writes
    # stall closed-loop clients for hundreds of milliseconds each.
    nvram_gain_at_98 = results["nvram"][0.98] / group[0.98]
    assert 1.2 < nvram_gain_at_98 < 4.0
