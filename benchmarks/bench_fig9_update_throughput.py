"""Experiment E3 — Fig. 9: append-delete throughput vs clients.

Write operations cannot be performed in parallel (they serialize in
the group thread's total order / the RPC intent handshake), so each
service hits a flat ceiling: the paper reports ~45 pairs/s for
group+NVRAM and ~5 pairs/s for both disk-based services.
"""

from repro.bench import update_throughput
from repro.bench.tables import format_throughput_curve

from conftest import write_result

CLIENTS = (1, 2, 3, 5, 7)


def run_fig9():
    curves = {}
    for impl in ("group", "nvram", "rpc"):
        curves[impl] = {
            n: update_throughput(impl, n, seed=0, measure_ms=15_000.0)
            for n in CLIENTS
        }
    return curves


def test_fig9_update_throughput(benchmark, results_dir):
    curves = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig9_update_throughput.txt",
        format_throughput_curve(
            "Fig. 9 — append-delete pairs/s vs clients "
            "(paper ceilings: NVRAM 45, group 5, RPC 5)",
            curves,
            "append-delete pairs per second (write throughput is 2x)",
        ),
    )
    group, rpc, nvram = curves["group"], curves["rpc"], curves["nvram"]
    # Flat ceilings: one client is enough to saturate.
    for impl_curve, ceiling, low, high in (
        (group, "group", 4.0, 6.5),
        (rpc, "rpc", 3.5, 6.5),
        (nvram, "nvram", 35.0, 60.0),
    ):
        for n in CLIENTS:
            assert low <= impl_curve[n] <= high, (
                f"{ceiling} at {n} clients: {impl_curve[n]:.1f} pairs/s "
                f"outside [{low}, {high}]"
            )
    # NVRAM is roughly an order of magnitude above the disk services.
    assert nvram[7] > group[7] * 6.0
