"""Experiment E3 — Fig. 9: append-delete throughput vs clients.

Write operations cannot be performed in parallel (they serialize in
the group thread's total order / the RPC intent handshake), so each
paper-configured service hits a flat ceiling: ~45 pairs/s for
group+NVRAM and ~5 pairs/s for both disk-based services. The paper
rows below therefore run with ``batch_max=1`` — the classic
one-record apply/persist loop the paper measured.

The group-commit extension (E3b) lifts the disk service's ceiling:
with batching on and enough initiator threads to keep requests in
flight, concurrent writers share one seek per batch instead of paying
two random writes each, so aggregate throughput *scales* with load
while single-client latency is unchanged (a singleton batch takes the
classic path).
"""

from repro.bench import update_latency, update_throughput
from repro.bench.tables import format_throughput_curve

from conftest import write_result

CLIENTS = (1, 2, 3, 5, 7)
SCALE_CLIENTS = (1, 4, 8)


def run_fig9():
    curves = {}
    for impl in ("group", "nvram", "rpc"):
        curves[impl] = {
            n: update_throughput(impl, n, seed=0, measure_ms=15_000.0, batch_max=1)
            for n in CLIENTS
        }
    return curves


def run_group_commit_scaling():
    """E3b: the batched disk service vs the same deployment unbatched.

    ``server_threads=8`` on both sides — the paper's single initiator
    thread caps in-flight requests at one per server, which starves
    batch formation; the comparison isolates the batching lever.
    """
    out = {"batched": {}, "unbatched": {}}
    for n in SCALE_CLIENTS:
        out["batched"][n] = update_throughput(
            "group", n, seed=0, measure_ms=15_000.0, server_threads=8
        )
        out["unbatched"][n] = update_throughput(
            "group", n, seed=0, measure_ms=15_000.0, server_threads=8, batch_max=1
        )
    out["latency_batched_ms"] = update_latency("group", seed=0, server_threads=8)
    out["latency_unbatched_ms"] = update_latency(
        "group", seed=0, server_threads=8, batch_max=1
    )
    return out


def test_fig9_update_throughput(benchmark, results_dir):
    curves = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig9_update_throughput.txt",
        format_throughput_curve(
            "Fig. 9 — append-delete pairs/s vs clients, batch_max=1 "
            "(paper ceilings: NVRAM 45, group 5, RPC 5)",
            curves,
            "append-delete pairs per second (write throughput is 2x)",
        ),
    )
    group, rpc, nvram = curves["group"], curves["rpc"], curves["nvram"]
    # Flat ceilings: one client is enough to saturate.
    for impl_curve, ceiling, low, high in (
        (group, "group", 4.0, 6.5),
        (rpc, "rpc", 3.5, 6.5),
        (nvram, "nvram", 35.0, 60.0),
    ):
        for n in CLIENTS:
            assert low <= impl_curve[n] <= high, (
                f"{ceiling} at {n} clients: {impl_curve[n]:.1f} pairs/s "
                f"outside [{low}, {high}]"
            )
    # NVRAM is roughly an order of magnitude above the disk services.
    assert nvram[7] > group[7] * 6.0


def test_fig9b_group_commit_scaling(benchmark, results_dir):
    data = benchmark.pedantic(run_group_commit_scaling, rounds=1, iterations=1)
    batched, unbatched = data["batched"], data["unbatched"]
    write_result(
        results_dir,
        "fig9b_group_commit_scaling.txt",
        format_throughput_curve(
            "Fig. 9b — group (disk) with group-commit batching, "
            "server_threads=8",
            {"batched": batched, "unbatched": unbatched},
            "append-delete pairs per second",
        )
        + (
            f"\n  single-client pair latency: "
            f"batched {data['latency_batched_ms']:.1f} ms, "
            f"batch_max=1 {data['latency_unbatched_ms']:.1f} ms"
        ),
    )
    # Unbatched stays pinned at the paper's flat ceiling.
    for n in SCALE_CLIENTS:
        assert 4.0 <= unbatched[n] <= 6.5
    # Batching turns the ceiling into a scaling curve: the issue's
    # acceptance bar is >= 2x aggregate throughput at 8 writers.
    assert batched[8] >= 2.0 * batched[1], (
        f"batched 8-client throughput {batched[8]:.1f} not 2x the "
        f"single-client {batched[1]:.1f}"
    )
    assert batched[8] >= 2.0 * unbatched[8]
    # ...without costing the lone writer anything (within 5%).
    assert data["latency_batched_ms"] <= data["latency_unbatched_ms"] * 1.05
