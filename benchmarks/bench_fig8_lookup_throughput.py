"""Experiment E2 — Fig. 8: lookup throughput vs number of clients.

Reproduces the paper's throughput curves for the group service, the
group+NVRAM service, and the RPC service. The claims checked:

* throughput rises with client count and saturates;
* the group service (3 servers) saturates ABOVE the RPC service
  (2 servers) — the paper measured 652 vs 520 lookups/s;
* saturation sits well below the ideal 333/s-per-server bound because
  of the locate/NOTHERE load-distribution heuristic.
"""

from repro.bench import lookup_throughput
from repro.bench.tables import format_throughput_curve

from conftest import write_result

CLIENTS = (1, 2, 3, 4, 5, 6, 7)


def run_fig8():
    curves = {}
    for impl in ("group", "nvram", "rpc"):
        curves[impl] = {
            n: lookup_throughput(impl, n, seed=0, measure_ms=6_000.0)
            for n in CLIENTS
        }
    return curves


def test_fig8_lookup_throughput(benchmark, results_dir):
    curves = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    write_result(
        results_dir,
        "fig8_lookup_throughput.txt",
        format_throughput_curve(
            "Fig. 8 — lookup throughput vs clients "
            "(paper saturation: group 652/s, RPC 520/s)",
            curves,
            "total lookups per second",
        ),
    )
    group, rpc = curves["group"], curves["rpc"]
    # Rising then saturating.
    assert group[3] > group[1] * 2.0
    assert group[7] < group[1] * 7 * 0.7  # well below linear scaling
    # Group service supports more clients than the RPC service.
    assert group[7] > rpc[7] * 1.15
    # Saturation in the paper's ballpark.
    assert 520 <= group[7] <= 820
    assert 380 <= rpc[7] <= 620
    # Neither reaches the ideal upper bound (1000 and 666).
    assert group[7] < 1000
    assert rpc[7] < 666


def test_fig8_variance_of_the_heuristic(benchmark, results_dir):
    """The paper: 'In some runs, the standard deviation was almost 100
    operations per second.' With enough listening threads that NOTHERE
    stops rebalancing, the port-cache heuristic's randomness produces
    exactly this run-to-run spread; we measure it across seeds."""
    import math

    def run():
        return [
            lookup_throughput(
                "group", 7, seed=seed, measure_ms=5_000.0, server_threads=4
            )
            for seed in range(6)
        ]

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    mean = sum(values) / len(values)
    stddev = math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))
    write_result(
        results_dir,
        "fig8_variance.txt",
        "Fig. 8 variance check (7 clients, sticky assignment regime)\n"
        f"  per-seed lookups/s: {[round(v) for v in values]}\n"
        f"  mean={mean:.0f}, stddev={stddev:.0f} "
        "(paper: stddev up to ~100 ops/s)",
    )
    assert stddev > 40.0, "the heuristic's run-to-run spread disappeared"
