"""Experiment E6 (ablation) — the resilience-degree knob.

Section 1: "By setting r, the programmer can trade performance against
fault tolerance." This ablation measures SendToGroup's packet count
and latency for r = 0, 1, 2 in a three-member group, plus the effect
of server threads on the Fig. 8 load-balancing heuristic (E6b).
"""

from repro.bench import lookup_throughput
from repro.group import GroupMember
from repro.net import Network
from repro.rpc import Transport
from repro.sim import Simulator

from conftest import write_result


def send_cost(resilience: int) -> tuple[int, float]:
    """(packets, latency_ms) of one SendToGroup at *resilience*."""
    sim = Simulator(seed=0)
    network = Network(sim)
    transports = {a: Transport(sim, network.attach(a)) for a in ("a", "b", "c")}
    members = {a: GroupMember(t, "g") for a, t in transports.items()}
    members["a"].create(resilience)

    def join(addr):
        yield from members[addr].join()

    for addr in ("b", "c"):
        sim.run_until_complete(sim.spawn(join(addr)))
    out = {}

    def run():
        yield from members["b"].send_to_group("warm")
        yield sim.sleep(5.0)
        snapshot = network.stats.snapshot()
        start = sim.now
        yield from members["b"].send_to_group("measured")
        out["latency"] = sim.now - start
        yield sim.sleep(2.0)
        after = network.stats.snapshot()
        interesting = ("grp.g.req", "grp.g.bc", "grp.g.ack", "grp.g.commit")
        out["packets"] = sum(
            after.get(k, 0) - snapshot.get(k, 0) for k in interesting
        )

    sim.run_until_complete(sim.spawn(run()))
    return out["packets"], out["latency"]


def test_resilience_degree_cost(benchmark, results_dir):
    def run():
        return {r: send_cost(r) for r in (0, 1, 2)}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["E6 — SendToGroup cost vs resilience degree (3 members)"]
    for r, (packets, latency) in sorted(costs.items()):
        lines.append(f"  r={r}: {packets} packets, {latency:5.2f} ms")
    write_result(results_dir, "e6_resilience.txt", "\n".join(lines))
    # More resilience, more packets, more latency.
    assert costs[0][0] < costs[1][0] <= costs[2][0]
    assert costs[0][1] < costs[2][1]
    assert costs[2][0] == 5  # the paper's r=2 count


def test_server_threads_ablation(benchmark, results_dir):
    """E6b: with more listening threads per server, NOTHERE stops
    firing and the port-cache heuristic's imbalance disappears —
    throughput approaches the ideal bound, unlike the measured system."""
    def run():
        return {
            threads: lookup_throughput(
                "group", 7, seed=0, measure_ms=5_000.0, server_threads=threads
            )
            for threads in (1, 2, 4)
        }

    by_threads = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["E6b — Fig. 8 saturation vs server threads (7 clients, group)"]
    for threads, value in sorted(by_threads.items()):
        lines.append(f"  threads={threads}: {value:6.0f} lookups/s")
    lines.append("  (paper measured 652/s; ideal bound is 1000/s)")
    write_result(results_dir, "e6b_threads.txt", "\n".join(lines))
    assert by_threads[1] < by_threads[4]
    assert by_threads[4] > 900  # near-ideal once bouncing stops
