"""Experiment E1 — Fig. 7: single-client latency of directory ops.

Reproduces the paper's central table: append-delete, tmp-file, and
lookup latency for the four implementations (Group(3), RPC(2),
Sun NFS(1), Group+NVRAM(3)). The shape checks assert every ordering
and ratio claim the paper makes about this table.
"""

from repro.bench import fig7_table
from repro.bench.tables import format_fig7, shape_check_fig7

from conftest import write_result


def run_fig7():
    return fig7_table(iterations=12, seed=0)


def test_fig7_latency_table(benchmark, results_dir):
    table = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    write_result(results_dir, "fig7_latency.txt", format_fig7(table))
    problems = shape_check_fig7(table)
    assert problems == [], f"shape claims violated: {problems}"


def test_fig7_nvram_speedup_factor(benchmark, results_dir):
    """The paper: NVRAM is 6.8x (append-delete) and 4.3x (tmp-file)
    faster than the plain group implementation."""
    table = benchmark.pedantic(lambda: fig7_table(iterations=8, seed=1), rounds=1, iterations=1)
    speedup_ad = table["append_delete"]["group"] / table["append_delete"]["nvram"]
    speedup_tf = table["tmp_file"]["group"] / table["tmp_file"]["nvram"]
    write_result(
        results_dir,
        "fig7_nvram_speedup.txt",
        "NVRAM speedups vs plain group service\n"
        f"  append-delete: {speedup_ad:.1f}x (paper: 6.8x)\n"
        f"  tmp-file:      {speedup_tf:.1f}x (paper: 4.3x)",
    )
    assert 5.0 < speedup_ad < 9.0
    assert 3.0 < speedup_tf < 6.0


def test_fig7_fault_tolerance_cost_vs_nfs(benchmark, results_dir):
    """The paper: high reliability costs 2.1x (append-delete) and
    1.9x (tmp-file) relative to Sun NFS."""
    table = benchmark.pedantic(lambda: fig7_table(iterations=8, seed=2), rounds=1, iterations=1)
    cost_ad = table["append_delete"]["group"] / table["append_delete"]["nfs"]
    cost_tf = table["tmp_file"]["group"] / table["tmp_file"]["nfs"]
    write_result(
        results_dir,
        "fig7_ft_cost.txt",
        "Fault-tolerance cost vs Sun NFS\n"
        f"  append-delete: {cost_ad:.1f}x (paper: 2.1x)\n"
        f"  tmp-file:      {cost_tf:.1f}x (paper: 1.9x)",
    )
    assert 1.6 < cost_ad < 2.8
    assert 1.4 < cost_tf < 2.6
