"""Raw simulator speed — sim-events/s the host chews through.

Every scale-out item on the roadmap (namespace sharding, pipelined
dissemination, 5k-client reads) multiplies simulated event counts;
this benchmark is the committed record of how fast the event loop is
and the CI gate that keeps it that way. Running the file as a script
regenerates ``BENCH_sim.json`` and can gate on a committed baseline:

    PYTHONPATH=src python benchmarks/bench_sim.py \
        --out BENCH_sim.json --check-against BENCH_sim.json

Absolute sim-events/s depends on the host, so the gate compares
*normalized* throughput: events/s divided by a pure-Python calibration
loop measured in the same process. The ratio cancels host speed; a
>10% drop in it is a real event-loop regression, not a slower runner.

Scenarios come from :mod:`repro.bench.simbench` (the same ones
``python -m repro perf`` profiles); the timed runs here attach **no**
profiler, so the published numbers carry zero instrumentation cost.
"""

import argparse
import json
import pathlib
import sys
from time import perf_counter_ns

from repro.bench.simbench import run_perf_scenario

SCENARIO = "mixed"

#: One-time before/after record of the event-loop quick wins this
#: benchmark's first version landed with (measured on one host, both
#: numbers in the same process — the ratio is what matters):
#: 1. ``_post``/``_post_in`` fast paths — process wakeups, sleeps, and
#:    spawns skip the per-event Timer allocation (they are never
#:    cancelled);
#: 2. process resumption via a stashed-payload bound method instead of
#:    a fresh ``lambda`` closure per generator step;
#: 3. precomputed debug names for sleep/timeout futures and the
#:    Condition/Semaphore/Channel wait futures (no f-string per call).
QUICK_WIN = {
    "description": (
        "no-Timer fast path for wakeups/sleeps + bound-method process "
        "resumption + precomputed future debug names"
    ),
    "mixed_medium": {
        "scenario": "mixed/medium seed=0, obs off, best of 3, same host",
        "before_events_per_s": 175_358,
        "after_events_per_s": 181_723,
        "speedup_x": 1.04,
    },
    "scheduler_micro": {
        "scenario": "200 procs x 500 sleeps (pure loop), best of 3, same host",
        "before_events_per_s": 410_769,
        "after_events_per_s": 550_872,
        "speedup_x": 1.34,
    },
}


def _calibration_loops_per_s(n: int = 400_000, rounds: int = 3) -> float:
    """Fixed pure-Python work rate, measured best-of-rounds.

    Dict stores + integer arithmetic — the same flavor of work the
    event loop does — so events/s divided by this is host-independent
    enough to gate on across CI runners.
    """
    best = 0.0
    for _ in range(rounds):
        d = {}
        acc = 0
        t0 = perf_counter_ns()
        for i in range(n):
            d[i & 63] = acc
            acc += i
        dt = perf_counter_ns() - t0
        best = max(best, n / (dt / 1e9))
    return best


def measure_cell(
    scale: str, obs_on: bool, seed: int = 0, repeats: int = 2
) -> dict:
    """Best-of-N wallclock for one (scale, obs) cell, profiler off."""
    best = None
    for _ in range(max(1, repeats)):
        run = run_perf_scenario(
            SCENARIO,
            scale,
            seed=seed,
            trace=obs_on,
            monitor=obs_on,
            profile=False,
        )
        if best is None or run.wall_ns < best.wall_ns:
            best = run
    return {
        "events_per_s": round(best.events_per_s, 1),
        "scheduled_events": best.scheduled_events,
        "ops": best.ops,
        "sim_ms": round(best.sim_ms, 1),
        "wall_ms": round(best.wall_ns / 1e6, 1),
    }


def run_matrix(scales, seed: int = 0, repeats: int = 2) -> dict:
    cells: dict = {}
    for scale in scales:
        cells[scale] = {
            "obs_off": measure_cell(scale, obs_on=False, seed=seed, repeats=repeats),
            "obs_on": measure_cell(scale, obs_on=True, seed=seed, repeats=repeats),
        }
    return cells


# ----------------------------------------------------------------------
# pytest entry points (bench suite)
# ----------------------------------------------------------------------

def test_sim_speed_sane(benchmark, results_dir):
    from conftest import write_result

    cell = benchmark.pedantic(
        lambda: measure_cell("small", obs_on=False, repeats=1),
        rounds=1,
        iterations=1,
    )
    write_result(
        results_dir,
        "e8_sim_speed.txt",
        "E8 — raw simulator speed (mixed/small, obs off)\n"
        f"  sim-events/s: {cell['events_per_s']:12,.0f}\n"
        f"  events:       {cell['scheduled_events']:12,}",
    )
    # Any interpreter on any host should clear this by an order of
    # magnitude; the real gate is the normalized CI check.
    assert cell["events_per_s"] > 5_000


def test_sim_speed_matches_committed_baseline():
    """The committed BENCH_sim.json must describe THIS code.

    Normalized comparison with a wide (35%) margin: the strict 10%
    gate runs in CI where the calibration happens on the same runner.
    """
    baseline_path = pathlib.Path(__file__).parent.parent / "BENCH_sim.json"
    baseline = json.loads(baseline_path.read_text())
    cal = _calibration_loops_per_s()
    cell = measure_cell("small", obs_on=False, repeats=2)
    old = (
        baseline["scales"]["small"]["obs_off"]["events_per_s"]
        / baseline["calibration_loops_per_s"]
    )
    new = cell["events_per_s"] / cal
    assert new >= old * 0.65, (
        f"normalized sim-events/s {new:.4f} regressed >35% against "
        f"committed {old:.4f}"
    )


# ----------------------------------------------------------------------
# script mode (CI bench-sim job)
# ----------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_sim.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="small+medium scales only, 1 repeat (CI smoke)",
    )
    parser.add_argument(
        "--check-against", default=None,
        help="baseline JSON to gate normalized sim-events/s against",
    )
    parser.add_argument("--max-regression", type=float, default=0.10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scales = ("small", "medium") if args.quick else ("small", "medium", "large")
    repeats = 1 if args.quick else 2
    calibration = _calibration_loops_per_s()
    cells = run_matrix(scales, seed=args.seed, repeats=repeats)

    result = {
        "schema": 1,
        "quick": args.quick,
        "scenario": SCENARIO,
        "seed": args.seed,
        "calibration_loops_per_s": round(calibration, 1),
        "scales": cells,
        "quick_win": QUICK_WIN,
    }
    for scale, cell in cells.items():
        off, on = cell["obs_off"], cell["obs_on"]
        cell["obs_overhead_pct"] = round(
            (off["events_per_s"] / on["events_per_s"] - 1.0) * 100, 1
        )
        cell["normalized_events_per_s"] = round(
            off["events_per_s"] / calibration, 4
        )

    status = 0
    if args.check_against:
        baseline = json.loads(pathlib.Path(args.check_against).read_text())
        old_cal = baseline["calibration_loops_per_s"]
        floor = 1.0 - args.max_regression
        for scale in scales:
            if scale not in baseline.get("scales", {}):
                continue
            old = (
                baseline["scales"][scale]["obs_off"]["events_per_s"] / old_cal
            )
            new = cells[scale]["obs_off"]["events_per_s"] / calibration
            verdict = "ok" if new >= old * floor else "REGRESSED"
            print(
                f"{scale}: normalized events/s {new:.4f} "
                f"(baseline {old:.4f}, floor {old * floor:.4f}) {verdict}"
            )
            if verdict != "ok":
                status = 1

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return status


if __name__ == "__main__":
    sys.exit(main())
