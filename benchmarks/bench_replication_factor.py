"""Experiment E9 (ablation) — replication factor scaling.

Section 3 claims the protocol works unchanged for "four or more
replicas", and section 5 argues a triplicated RPC service would need
4 RPCs per update where the group service still pays one SendToGroup.
This ablation measures how update latency and multicast cost scale
with the number of replicas (3 → 5 → 7), and contrasts it with the
n-1 point-to-point RPCs an RPC design would need.
"""

from repro.cluster import GroupServiceCluster

from conftest import write_result


def group_update_cost(n_servers: int, seed: int = 0):
    """(update latency ms, group frames per update) at *n_servers*."""
    cluster = GroupServiceCluster(
        n_servers=n_servers,
        seed=seed,
        resilience=n_servers - 1,
        name=f"rf{n_servers}",
    )
    cluster.start()
    cluster.wait_operational()
    client = cluster.add_client("c")
    root = cluster.root_capability
    prefix = f"grp.dirsvc.rf{n_servers}."
    out = {}

    def work():
        target = yield from client.create_dir()  # warm everything
        yield cluster.sim.sleep(500.0)
        before_frames = {
            k: v
            for k, v in cluster.network.stats.frames_by_kind.items()
            if k.startswith(prefix) and not k.endswith((".hb", ".echo"))
        }
        start = cluster.sim.now
        yield from client.append_row(root, "probe", (target,))
        out["latency"] = cluster.sim.now - start
        yield cluster.sim.sleep(100.0)
        after_frames = {
            k: v
            for k, v in cluster.network.stats.frames_by_kind.items()
            if k.startswith(prefix) and not k.endswith((".hb", ".echo"))
        }
        out["frames"] = sum(after_frames.values()) - sum(before_frames.values())

    cluster.run_process(work())
    return out["latency"], out["frames"]


def test_replication_factor_scaling(benchmark, results_dir):
    def run():
        return {n: group_update_cost(n) for n in (3, 5, 7)}

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "E9 — update cost vs replication factor (group service, r = n-1)",
        f"{'replicas':<10}{'latency':>12}{'grp frames':>12}{'RPC-design frames':>20}",
    ]
    for n, (latency, frames) in sorted(costs.items()):
        rpc_frames = 3 * (n - 1)  # n-1 point-to-point RPCs, 3 packets each
        lines.append(f"{n:<10}{latency:>10.1f} ms{frames:>12}{rpc_frames:>20}")
    lines.append(
        "(the multicast keeps group frames ~flat: 1 bc + n-1 acks + "
        "commit; an RPC design pays 3(n-1) and serializes them)"
    )
    write_result(results_dir, "e9_replication_factor.txt", "\n".join(lines))

    lat3, frames3 = costs[3]
    lat7, frames7 = costs[7]
    # Latency is dominated by the disks, not by replica count: going
    # from 3 to 7 replicas costs only a few extra milliseconds.
    assert lat7 < lat3 * 1.15
    # Frame growth is the n-1 acks only (no extra multicasts).
    assert frames7 - frames3 == 4
    # Always cheaper than the point-to-point equivalent at 7 replicas.
    assert frames7 < 3 * 6
